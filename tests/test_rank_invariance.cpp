// Rank-count invariance: the same problem advanced one (and several)
// steps on 1, 2, and 8 vmpi ranks must produce bitwise-identical interior
// fields. This isolates halo-exchange correctness from the golden
// harness: any packing/ordering/ghost-width bug shows up as a checksum
// difference between decompositions.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "chem/mechanisms.hpp"
#include "common/hash.hpp"
#include "solver/cases.hpp"
#include "solver/solver.hpp"
#include "vmpi/vmpi.hpp"

namespace sv = s3d::solver;
namespace vmpi = s3d::vmpi;

namespace {

// Run `nsteps` of the given case on a (px, py, pz) decomposition and
// return the per-variable FNV-1a checksums of the gathered global
// interior (x fastest, then y, then z, then variable).
std::vector<std::uint64_t> run_and_checksum(const sv::CaseSetup& setup,
                                            int nsteps, int px, int py,
                                            int pz) {
  const int NX = setup.cfg.x.n, NY = setup.cfg.y.n, NZ = setup.cfg.z.n;
  const int nranks = px * py * pz;
  const int nv = sv::n_conserved(setup.cfg.mech->n_species());
  std::vector<double> global(static_cast<std::size_t>(nv) * NX * NY * NZ);

  vmpi::run(nranks, [&](vmpi::Comm& comm) {
    sv::Solver s(setup.cfg, comm, px, py, pz);
    s.initialize(setup.init);
    s.run(nsteps);
    const auto& l = s.layout();
    const auto off = s.offset();
    for (int v = 0; v < nv; ++v) {
      const double* var = s.state().var(v);
      for (int k = 0; k < l.nz; ++k)
        for (int j = 0; j < l.ny; ++j)
          for (int i = 0; i < l.nx; ++i) {
            const std::size_t g =
                static_cast<std::size_t>(v) * NX * NY * NZ +
                static_cast<std::size_t>(off[2] + k) * NX * NY +
                static_cast<std::size_t>(off[1] + j) * NX + (off[0] + i);
            global[g] = var[l.at(i, j, k)];
          }
    }
    comm.barrier();  // all interiors written before rank 0 returns
  });

  std::vector<std::uint64_t> sums(nv);
  const std::size_t pts = static_cast<std::size_t>(NX) * NY * NZ;
  for (int v = 0; v < nv; ++v)
    sums[v] = s3d::fnv1a64(global.data() + static_cast<std::size_t>(v) * pts,
                           pts * sizeof(double));
  return sums;
}

}  // namespace

TEST(RankInvariance, PressureWave3dOneStep) {
  const auto setup = sv::pressure_wave_case(16);
  const auto serial = run_and_checksum(setup, 1, 1, 1, 1);
  const auto two = run_and_checksum(setup, 1, 2, 1, 1);
  const auto eight = run_and_checksum(setup, 1, 2, 2, 2);
  ASSERT_EQ(serial.size(), two.size());
  ASSERT_EQ(serial.size(), eight.size());
  for (std::size_t v = 0; v < serial.size(); ++v) {
    EXPECT_EQ(two[v], serial[v]) << "1 vs 2 ranks differ in variable " << v;
    EXPECT_EQ(eight[v], serial[v]) << "1 vs 8 ranks differ in variable " << v;
  }
}

TEST(RankInvariance, PressureWave3dSeveralStepsAndAxisSplits) {
  const auto setup = sv::pressure_wave_case(16);
  const auto ref = run_and_checksum(setup, 3, 1, 1, 1);
  // Split each axis separately: catches per-axis pack/unpack asymmetries.
  for (const auto& decomp :
       {std::array<int, 3>{2, 1, 1}, {1, 2, 1}, {1, 1, 2}, {2, 2, 2}}) {
    const auto got =
        run_and_checksum(setup, 3, decomp[0], decomp[1], decomp[2]);
    for (std::size_t v = 0; v < ref.size(); ++v)
      EXPECT_EQ(got[v], ref[v])
          << decomp[0] << "x" << decomp[1] << "x" << decomp[2]
          << " differs in variable " << v;
  }
}

TEST(RankInvariance, ReactingLiftedJet2d) {
  // Non-periodic NSCBC boundaries + inflow turbulence + chemistry: the
  // full stack must still be decomposition-invariant.
  sv::LiftedJetParams p;
  p.nx = 32;
  p.ny = 24;
  const auto setup = sv::lifted_jet_case(p);
  const auto serial = run_and_checksum(setup, 2, 1, 1, 1);
  const auto par = run_and_checksum(setup, 2, 2, 2, 1);
  for (std::size_t v = 0; v < serial.size(); ++v)
    EXPECT_EQ(par[v], serial[v]) << "variable " << v;
}

TEST(RankInvariance, SerialSolverMatchesSingleRankParallel) {
  // The serial constructor and a 1-rank Cartesian communicator take
  // different code paths (local wrap vs self-neighbour exchange); they
  // must agree bitwise.
  const auto setup = sv::pressure_wave_case(12);
  sv::Solver serial(setup.cfg);
  serial.initialize(setup.init);
  serial.run(2);

  const auto par = run_and_checksum(setup, 2, 1, 1, 1);
  const auto& l = serial.layout();
  const int nv = serial.state().nv();
  std::vector<double> global(static_cast<std::size_t>(nv) * l.nx * l.ny *
                             l.nz);
  for (int v = 0; v < nv; ++v)
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i)
          global[static_cast<std::size_t>(v) * l.nx * l.ny * l.nz +
                 static_cast<std::size_t>(k) * l.nx * l.ny +
                 static_cast<std::size_t>(j) * l.nx + i] =
              serial.state().var(v)[l.at(i, j, k)];
  const std::size_t pts = static_cast<std::size_t>(l.nx) * l.ny * l.nz;
  for (int v = 0; v < nv; ++v)
    EXPECT_EQ(s3d::fnv1a64(global.data() + v * pts, pts * sizeof(double)),
              par[v])
        << "variable " << v;
}
