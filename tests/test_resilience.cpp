// Resilience tests (DESIGN.md "Resilience"): rotating restart series,
// the run_resilient recovery drivers (serial and 8-rank parallel, with
// bitwise-identical recovered state), deadlock detection with per-rank
// blocked-site reports, rank-failure propagation, and hardening of the
// restart/analysis readers against missing, truncated and bit-flipped
// files.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "chem/mechanisms.hpp"
#include "common/hash.hpp"
#include "common/random.hpp"
#include "resilience/fault.hpp"
#include "solver/checkpoint.hpp"
#include "solver/resilient.hpp"
#include "solver/solver.hpp"
#include "vmpi/vmpi.hpp"

namespace sv = s3d::solver;
namespace chem = s3d::chem;
namespace fault = s3d::fault;
namespace vmpi = s3d::vmpi;
namespace fs = std::filesystem;

namespace {

sv::Config small_cfg() {
  sv::Config cfg;
  static auto mech =
      std::make_shared<const chem::Mechanism>(chem::air_inert());
  cfg.mech = mech;
  cfg.x = {24, 0.01, true};
  cfg.y = {12, 0.01, true};
  cfg.z = {1, 1.0, false};
  for (int a = 0; a < 3; ++a)
    for (auto& f : cfg.faces[a]) f.kind = sv::BcKind::periodic;
  cfg.transport = sv::TransportModel::power_law;
  return cfg;
}

sv::Config cube_cfg() {
  // 16^3 over a 2x2x2 decomposition: 8^3 local boxes (>= 5 interior
  // points per split axis, the stencil floor).
  sv::Config cfg;
  static auto mech =
      std::make_shared<const chem::Mechanism>(chem::air_inert());
  cfg.mech = mech;
  cfg.x = {16, 0.01, true};
  cfg.y = {16, 0.01, true};
  cfg.z = {16, 0.01, true};
  for (int a = 0; a < 3; ++a)
    for (auto& f : cfg.faces[a]) f.kind = sv::BcKind::periodic;
  cfg.transport = sv::TransportModel::power_law;
  return cfg;
}

void wavy_init(double x, double y, double z, sv::InflowState& st, double& p) {
  st.u = 3.0 * std::sin(2 * 3.14159265358979 * x / 0.01);
  st.v = 1.0 * std::cos(2 * 3.14159265358979 * y / 0.01);
  st.w = 0.5 * std::sin(2 * 3.14159265358979 * z / 0.01);
  st.T = 300.0 + 8.0 * std::sin(2 * 3.14159265358979 * (x + y) / 0.01);
  st.Y.fill(0.0);
  st.Y[0] = 0.233;
  st.Y[1] = 0.767;
  p = 101325.0;
}

struct TmpDir {
  fs::path p;
  explicit TmpDir(const std::string& name)
      : p(fs::temp_directory_path() / name) {
    fs::remove_all(p);
    fs::create_directories(p);
  }
  ~TmpDir() {
    std::error_code ec;
    fs::remove_all(p, ec);
  }
  std::string str() const { return p.string(); }
};

struct FaultSession {
  explicit FaultSession(std::uint64_t seed = 2026) { fault::set_seed(seed); }
  ~FaultSession() { fault::reset(); }
};

std::uint64_t state_checksum(const sv::Solver& s) {
  s3d::Fnv1a64 h;
  const auto& l = s.layout();
  for (int v = 0; v < s.state().nv(); ++v)
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i)
          h.update_value(s.state().at(v, i, j, k));
  h.update_value(s.time());
  const long steps = s.steps_taken();
  h.update_value(steps);
  return h.digest();
}

void flip_byte(const std::string& path, std::size_t pos) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(pos));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(pos));
  f.put(static_cast<char>(c ^ 0x40));
}

}  // namespace

TEST(ResilienceSchedule, CheckpointBoundaries) {
  EXPECT_EQ(sv::checkpoint_schedule(10, 2),
            (std::vector<long>{2, 4, 6, 8, 10}));
  EXPECT_EQ(sv::checkpoint_schedule(10, 3), (std::vector<long>{3, 6, 9, 10}));
  EXPECT_EQ(sv::checkpoint_schedule(5, 0), (std::vector<long>{5}));
  EXPECT_EQ(sv::checkpoint_schedule(4, 10), (std::vector<long>{4}));
  EXPECT_TRUE(sv::checkpoint_schedule(0, 2).empty());
}

TEST(RestartSeries, RotatesAndPrunesGenerations) {
  TmpDir dir("s3dpp_series_rot");
  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);

  sv::RestartSeries series(dir.str(), "ckpt", /*keep_last=*/3);
  for (long gen : {2, 4, 6, 8}) {
    s.run(2);
    series.write(s, gen);
  }
  EXPECT_EQ(series.generations(), (std::vector<long>{8, 6, 4}));
  EXPECT_FALSE(fs::exists(series.path(2))) << "pruned generation lingers";
  EXPECT_TRUE(fs::exists(series.manifest_path()));

  sv::Solver b(cfg);
  b.initialize(wavy_init);
  std::vector<std::string> skipped;
  EXPECT_EQ(series.read_latest(b, &skipped), 8);
  EXPECT_TRUE(skipped.empty());
  EXPECT_EQ(b.steps_taken(), s.steps_taken());
  EXPECT_EQ(state_checksum(b), state_checksum(s));
}

TEST(RestartSeries, SkipsCorruptNewestGeneration) {
  TmpDir dir("s3dpp_series_skip");
  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);

  sv::RestartSeries series(dir.str(), "ckpt", 3);
  s.run(2);
  series.write(s, 2);
  const auto want = state_checksum(s);
  s.run(2);
  series.write(s, 4);

  flip_byte(series.path(4), fs::file_size(series.path(4)) / 2);

  sv::Solver b(cfg);
  b.initialize(wavy_init);
  std::vector<std::string> skipped;
  EXPECT_EQ(series.read_latest(b, &skipped), 2);
  ASSERT_EQ(skipped.size(), 1u);
  EXPECT_NE(skipped[0].find("gen 4"), std::string::npos) << skipped[0];
  EXPECT_NE(skipped[0].find("checksum"), std::string::npos) << skipped[0];
  EXPECT_EQ(state_checksum(b), want);
}

TEST(RestartSeries, SurvivesLostManifest) {
  TmpDir dir("s3dpp_series_scan");
  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);
  sv::RestartSeries series(dir.str(), "ckpt", 3);
  s.run(2);
  series.write(s, 2);
  s.run(2);
  series.write(s, 4);

  fs::remove(series.manifest_path());
  EXPECT_EQ(series.generations(), (std::vector<long>{4, 2}));

  sv::Solver b(cfg);
  b.initialize(wavy_init);
  EXPECT_EQ(series.read_latest(b), 4);
  EXPECT_EQ(state_checksum(b), state_checksum(s));
}

TEST(RestartSeries, EmptyDirectoryReportsNoGeneration) {
  TmpDir dir("s3dpp_series_empty");
  sv::RestartSeries series(dir.str(), "ckpt", 3);
  EXPECT_TRUE(series.generations().empty());
  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);
  EXPECT_EQ(series.read_latest(s), -1);
}

TEST(RestartHardening, MissingFilesThrowDescriptiveErrors) {
  const std::string path =
      (fs::temp_directory_path() / "s3dpp_no_such_restart.rst").string();
  fs::remove(path);
  try {
    sv::restart_time(path);
    FAIL() << "restart_time on a missing file did not throw";
  } catch (const s3d::Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("missing or unreadable"),
              std::string::npos)
        << e.what();
  }

  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);
  try {
    sv::read_restart(path, s);
    FAIL() << "read_restart on a missing file did not throw";
  } catch (const s3d::Error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
}

TEST(RestartHardening, CorruptionErrorNamesPathAndChecksums) {
  TmpDir dir("s3dpp_restart_diag");
  const std::string path = (dir.p / "r.rst").string();
  auto cfg = small_cfg();
  sv::Solver s(cfg);
  s.initialize(wavy_init);
  s.run(2);
  sv::write_restart(path, s);
  flip_byte(path, fs::file_size(path) / 2);

  sv::Solver b(cfg);
  b.initialize(wavy_init);
  try {
    sv::read_restart(path, b);
    FAIL() << "corrupted restart loaded silently";
  } catch (const s3d::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("stored="), std::string::npos) << what;
    EXPECT_NE(what.find("computed="), std::string::npos) << what;
  }
}

TEST(AnalysisHardening, MutatedFilesNeverLoadSilently) {
  // Property test: an analysis file with any single byte flipped, a
  // truncated tail, or zero length must raise a typed error -- never
  // crash, hang, or return partial data.
  TmpDir dir("s3dpp_analysis_prop");
  const std::string path = (dir.p / "a.bin").string();
  sv::AnalysisFile a;
  a.add_profile("T_centerline", {0, 1, 2, 3}, {300, 400, 500, 600});
  a.add_slice("T_xy", 3, 2, {1, 2, 3, 4, 5, 6});
  a.write(path);
  const auto clean = [&] {
    std::ifstream f(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(f), {});
  }();
  ASSERT_GT(clean.size(), 32u);

  s3d::Rng rng(0xbadf00d);
  std::vector<std::size_t> positions = {0, clean.size() / 2,
                                        clean.size() - 1};
  for (int i = 0; i < 12; ++i)
    positions.push_back(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(clean.size()) - 1)));
  for (const auto pos : positions) {
    std::string bad = clean;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    {
      std::ofstream f(path, std::ios::binary | std::ios::trunc);
      f.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    }
    EXPECT_THROW(sv::AnalysisFile::read(path), s3d::Error)
        << "flipped byte at " << pos << " loaded silently";
  }

  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, clean.size() / 3, clean.size() - 5}) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(clean.data(), static_cast<std::streamsize>(keep));
    f.close();
    EXPECT_THROW(sv::AnalysisFile::read(path), s3d::Error)
        << "truncated to " << keep << " bytes loaded silently";
  }

  fs::remove(path);
  EXPECT_THROW(sv::AnalysisFile::read(path), s3d::Error);
}

#ifndef S3D_FAULTS_DISABLED

TEST(RunResilient, SerialRecoveryIsBitwiseIdentical) {
  auto cfg = small_cfg();
  sv::ResilienceConfig rc;
  rc.checkpoint_every = 2;
  rc.keep_last = 3;
  rc.max_attempts = 3;

  TmpDir ref_dir("s3dpp_resil_ref");
  rc.dir = ref_dir.str();
  fault::reset();
  sv::Solver ref(cfg);
  const auto ref_rep = sv::run_resilient(ref, wavy_init, 10, rc);
  ASSERT_TRUE(ref_rep.succeeded);
  EXPECT_EQ(ref_rep.attempts, 1);
  EXPECT_EQ(ref_rep.final_steps, 10);

  // Kill step 7 (call index 6): after generation 6 lands, mid chunk 6->8.
  TmpDir dir("s3dpp_resil_run");
  rc.dir = dir.str();
  FaultSession fsess(11);
  fault::arm({.site = "solver.step", .kind = fault::Kind::fail, .nth = 6});
  sv::Solver s(cfg);
  const auto rep = sv::run_resilient(s, wavy_init, 10, rc);
  ASSERT_TRUE(rep.succeeded) << (rep.events.empty() ? "" : rep.events.back());
  EXPECT_EQ(rep.attempts, 2);
  EXPECT_EQ(rep.recoveries, 1);
  EXPECT_EQ(fault::fires_at("solver.step"), 1);

  EXPECT_EQ(s.steps_taken(), ref.steps_taken());
  EXPECT_EQ(s.time(), ref.time());
  EXPECT_EQ(state_checksum(s), state_checksum(ref))
      << "recovered run diverged from the fault-free run";
}

TEST(RunResilient, SerialRecoverySkipsCorruptedGeneration) {
  auto cfg = small_cfg();
  sv::ResilienceConfig rc;
  rc.checkpoint_every = 2;
  rc.max_attempts = 3;

  TmpDir ref_dir("s3dpp_resil_cref");
  rc.dir = ref_dir.str();
  fault::reset();
  sv::Solver ref(cfg);
  ASSERT_TRUE(sv::run_resilient(ref, wavy_init, 10, rc).succeeded);

  // Generation 4 (checkpoint.write call 1) lands corrupted; step 6 (call
  // index 5, mid chunk 4->6) dies. Recovery must reject gen 4 and roll
  // back to gen 2.
  TmpDir dir("s3dpp_resil_crun");
  rc.dir = dir.str();
  FaultSession fsess(12);
  fault::arm(
      {.site = "checkpoint.write", .kind = fault::Kind::corrupt, .nth = 1});
  fault::arm({.site = "solver.step", .kind = fault::Kind::fail, .nth = 5});
  sv::Solver s(cfg);
  const auto rep = sv::run_resilient(s, wavy_init, 10, rc);
  ASSERT_TRUE(rep.succeeded) << (rep.events.empty() ? "" : rep.events.back());
  EXPECT_EQ(rep.recoveries, 1);
  bool saw_skip = false;
  for (const auto& e : rep.events)
    if (e.find("skipped") != std::string::npos &&
        e.find("gen 4") != std::string::npos)
      saw_skip = true;
  EXPECT_TRUE(saw_skip) << "no skipped-generation event recorded";
  EXPECT_EQ(state_checksum(s), state_checksum(ref));
}

TEST(RunResilient, ExhaustedBudgetReportsFailure) {
  auto cfg = small_cfg();
  TmpDir dir("s3dpp_resil_budget");
  sv::ResilienceConfig rc;
  rc.dir = dir.str();
  rc.checkpoint_every = 2;
  rc.max_attempts = 2;

  FaultSession fsess(13);
  // Every step fails, forever: the budget must bound the retries.
  fault::arm({.site = "solver.step",
              .kind = fault::Kind::fail,
              .nth = -1,
              .probability = 1.0,
              .max_fires = -1});
  sv::Solver s(cfg);
  const auto rep = sv::run_resilient(s, wavy_init, 10, rc);
  EXPECT_FALSE(rep.succeeded);
  EXPECT_EQ(rep.attempts, 2);
  ASSERT_FALSE(rep.events.empty());
  EXPECT_NE(rep.events.back().find("attempt budget exhausted"),
            std::string::npos);
}

TEST(RunResilient, WriteBehindRecoveryIsBitwiseIdentical) {
  // The delta store's write-behind persister must not change recovery
  // semantics: same fault schedule as SerialRecoveryIsBitwiseIdentical,
  // but generations are block deltas persisted off the step path.
  auto cfg = small_cfg();
  sv::ResilienceConfig rc;
  rc.checkpoint_every = 2;
  rc.keep_last = 3;
  rc.max_attempts = 3;
  sv::CkptOptions wb;
  wb.delta = true;
  wb.base_every = 3;
  wb.write_behind = true;
  wb.queue_depth = 2;
  rc.store = wb;

  TmpDir ref_dir("s3dpp_resil_wbref");
  rc.dir = ref_dir.str();
  fault::reset();
  sv::Solver ref(cfg);
  const auto ref_rep = sv::run_resilient(ref, wavy_init, 10, rc);
  ASSERT_TRUE(ref_rep.succeeded);
  EXPECT_EQ(ref_rep.attempts, 1);

  TmpDir dir("s3dpp_resil_wbrun");
  rc.dir = dir.str();
  FaultSession fsess(11);
  fault::arm({.site = "solver.step", .kind = fault::Kind::fail, .nth = 6});
  sv::Solver s(cfg);
  const auto rep = sv::run_resilient(s, wavy_init, 10, rc);
  ASSERT_TRUE(rep.succeeded) << (rep.events.empty() ? "" : rep.events.back());
  EXPECT_EQ(rep.attempts, 2);
  EXPECT_EQ(rep.recoveries, 1);

  EXPECT_EQ(s.steps_taken(), ref.steps_taken());
  EXPECT_EQ(state_checksum(s), state_checksum(ref))
      << "write-behind recovery diverged from the fault-free run";
}

TEST(RunResilient, KillMidPersistRecoversFromPriorGeneration) {
  // Crash consistency under the driver: generation 4's write-behind
  // persist dies (retry budget 0), then the run itself dies mid-chunk.
  // Recovery must skip the never-persisted gen 4 via its validity bit --
  // silently, O(1), no skipped-generation event -- restore gen 2, and
  // finish bitwise identical to the fault-free run.
  auto cfg = small_cfg();
  sv::ResilienceConfig rc;
  rc.checkpoint_every = 2;
  rc.keep_last = 3;
  rc.max_attempts = 3;
  sv::CkptOptions wb;
  wb.delta = true;
  wb.base_every = 2;
  wb.write_behind = true;
  wb.persist_retries = 0;
  wb.backoff_ms = 0.01;
  wb.backoff_cap_ms = 0.02;
  rc.store = wb;

  TmpDir ref_dir("s3dpp_resil_kpref");
  rc.dir = ref_dir.str();
  fault::reset();
  sv::Solver ref(cfg);
  ASSERT_TRUE(sv::run_resilient(ref, wavy_init, 10, rc).succeeded);

  TmpDir dir("s3dpp_resil_kprun");
  rc.dir = dir.str();
  FaultSession fsess(14);
  // Persist call 1 = generation 4 (call 0 persisted gen 2); step call 5
  // = step 6, mid chunk 4->6, so the newest table entry at recovery time
  // is the unpersisted gen 4.
  fault::arm({.site = "checkpoint.persist",
              .kind = fault::Kind::fail,
              .nth = 1,
              .max_fires = 1});
  fault::arm({.site = "solver.step", .kind = fault::Kind::fail, .nth = 5});
  sv::Solver s(cfg);
  const auto rep = sv::run_resilient(s, wavy_init, 10, rc);
  ASSERT_TRUE(rep.succeeded) << (rep.events.empty() ? "" : rep.events.back());
  EXPECT_EQ(rep.recoveries, 1);
  EXPECT_EQ(fault::fires_at("checkpoint.persist"), 1);
  EXPECT_EQ(fault::fires_at("solver.step"), 1);

  bool restored2 = false;
  for (const auto& e : rep.events) {
    EXPECT_EQ(e.find("skipped"), std::string::npos)
        << "validity-bit skip should be silent, got: " << e;
    if (e.find("restored generation 2") != std::string::npos) restored2 = true;
  }
  EXPECT_TRUE(restored2) << "recovery did not land on generation 2";
  EXPECT_EQ(state_checksum(s), state_checksum(ref));
}

TEST(RunResilient, GoldenParallelRecoveryIsBitwiseIdentical) {
  // The acceptance scenario: an 8-rank seeded run with an injected
  // checkpoint corruption on rank 2 and an injected rank-1 failure must
  // recover through run_resilient with final per-rank field checksums
  // bitwise identical to the fault-free run.
  auto cfg = cube_cfg();
  sv::ResilienceConfig rc;
  rc.checkpoint_every = 2;
  rc.keep_last = 3;
  rc.max_attempts = 4;

  std::vector<std::uint64_t> sums(8, 0);
  const auto finalize = [&sums](sv::Solver& s, vmpi::Comm& comm) {
    sums[comm.rank()] = state_checksum(s);
  };

  TmpDir ref_dir("s3dpp_resil_pref");
  rc.dir = ref_dir.str();
  fault::reset();
  const auto ref_rep =
      sv::run_resilient(cfg, wavy_init, 10, rc, 2, 2, 2, finalize);
  ASSERT_TRUE(ref_rep.succeeded);
  EXPECT_EQ(ref_rep.attempts, 1);
  const auto ref_sums = sums;

  // Rank 2's second checkpoint (generation 4) lands corrupted; rank 1
  // dies at its step 5 (call index 4), after gen 4 is on disk. Recovery
  // must reject gen 4 collectively and roll every rank back to gen 2.
  TmpDir dir("s3dpp_resil_prun");
  rc.dir = dir.str();
  FaultSession fsess(2026);
  fault::arm({.site = "checkpoint.write",
              .kind = fault::Kind::corrupt,
              .nth = 1,
              .rank = 2});
  fault::arm({.site = "solver.step",
              .kind = fault::Kind::fail,
              .nth = 4,
              .rank = 1});
  std::fill(sums.begin(), sums.end(), 0);
  const auto rep =
      sv::run_resilient(cfg, wavy_init, 10, rc, 2, 2, 2, finalize);
  ASSERT_TRUE(rep.succeeded) << (rep.events.empty() ? "" : rep.events.back());
  EXPECT_EQ(rep.recoveries, 1);
  EXPECT_EQ(fault::fires_at("solver.step"), 1);
  EXPECT_EQ(fault::fires_at("checkpoint.write"), 1);
  bool saw_skip = false;
  for (const auto& e : rep.events)
    if (e.find("rank 2") != std::string::npos &&
        e.find("gen 4") != std::string::npos)
      saw_skip = true;
  EXPECT_TRUE(saw_skip) << "rank 2's corrupted generation was not reported";

  for (int r = 0; r < 8; ++r)
    EXPECT_EQ(sums[r], ref_sums[r])
        << "rank " << r << " state diverged after recovery";
}

TEST(RunResilient, InjectedIsendFaultIsAbsorbed) {
  // A transient communication failure inside halo exchange surfaces as a
  // thrown InjectedFault on one rank; the driver retries and converges.
  auto cfg = cube_cfg();
  sv::ResilienceConfig rc;
  rc.checkpoint_every = 2;
  rc.max_attempts = 4;

  std::vector<std::uint64_t> sums(8, 0);
  const auto finalize = [&sums](sv::Solver& s, vmpi::Comm& comm) {
    sums[comm.rank()] = state_checksum(s);
  };

  TmpDir ref_dir("s3dpp_resil_iref");
  rc.dir = ref_dir.str();
  fault::reset();
  ASSERT_TRUE(
      sv::run_resilient(cfg, wavy_init, 6, rc, 2, 2, 2, finalize).succeeded);
  const auto ref_sums = sums;

  TmpDir dir("s3dpp_resil_irun");
  rc.dir = dir.str();
  FaultSession fsess(31);
  fault::arm({.site = "vmpi.isend",
              .kind = fault::Kind::fail,
              .nth = 40,
              .rank = 3});
  std::fill(sums.begin(), sums.end(), 0);
  const auto rep = sv::run_resilient(cfg, wavy_init, 6, rc, 2, 2, 2, finalize);
  ASSERT_TRUE(rep.succeeded) << (rep.events.empty() ? "" : rep.events.back());
  EXPECT_GE(rep.recoveries, 1);
  for (int r = 0; r < 8; ++r) EXPECT_EQ(sums[r], ref_sums[r]) << "rank " << r;
}

#endif  // S3D_FAULTS_DISABLED

TEST(Watchdog, DeadlockReportNamesEveryBlockedSite) {
  // Rank 0 waits on a message rank 1 never sends while everyone else sits
  // in a barrier: a genuine deadlock the watchdog must turn into a typed
  // report instead of a hang.
  vmpi::RunOptions opts;
  opts.watchdog_s = 0.25;
  try {
    vmpi::run(
        4,
        [](vmpi::Comm& c) {
          if (c.rank() == 0) {
            double buf[1];
            auto r = c.irecv(1, 7, buf);
            c.wait(r);
          } else {
            c.barrier();
          }
        },
        opts);
    FAIL() << "deadlocked run returned";
  } catch (const vmpi::DeadlockError& e) {
    ASSERT_EQ(e.blocked().size(), 4u);
    for (const auto& b : e.blocked()) {
      if (b.rank == 0)
        EXPECT_EQ(b.site, "irecv(src=1, tag=7)");
      else
        EXPECT_EQ(b.site, "barrier") << "rank " << b.rank;
      EXPECT_NE(std::string(e.what()).find("rank " + std::to_string(b.rank)),
                std::string::npos);
    }
  }
}

TEST(Watchdog, HealthyRunsAreNotFlagged) {
  // Slow-but-progressing communication must never trip the watchdog:
  // progress resets the clock even when each individual wait is long.
  vmpi::RunOptions opts;
  opts.watchdog_s = 0.2;
  vmpi::run(
      4,
      [](vmpi::Comm& c) {
        for (int round = 0; round < 3; ++round) {
          if (c.rank() == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(120));
          c.barrier();
          double v = c.allreduce_sum(1.0);
          ASSERT_EQ(v, 4.0);
        }
      },
      opts);
}

TEST(Watchdog, RankFailureUnblocksPeersAndRethrowsOriginal) {
  vmpi::RunOptions opts;
  opts.watchdog_s = 5.0;
  try {
    vmpi::run(
        4,
        [](vmpi::Comm& c) {
          if (c.rank() == 2) throw s3d::Error("organic failure on rank 2");
          c.barrier();  // would hang forever without failure propagation
        },
        opts);
    FAIL() << "failing run returned";
  } catch (const s3d::Error& e) {
    EXPECT_NE(std::string(e.what()).find("organic failure on rank 2"),
              std::string::npos)
        << "original error not rethrown: " << e.what();
  }
}
