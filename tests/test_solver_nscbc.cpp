// NSCBC boundary-condition tests: non-reflecting outflow, hard inflow,
// and a reacting 1-D freely-propagating flame exercised end to end.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "chem/mechanisms.hpp"
#include "chem/mixing.hpp"
#include "solver/solver.hpp"

namespace sv = s3d::solver;
namespace chem = s3d::chem;

namespace {

std::shared_ptr<const chem::Mechanism> air() {
  static auto m = std::make_shared<const chem::Mechanism>(chem::air_inert());
  return m;
}

sv::Config open_air_1d(int n, double L) {
  sv::Config cfg;
  cfg.mech = air();
  cfg.x = {n, L, false};
  cfg.y = {1, 1.0, false};
  cfg.z = {1, 1.0, false};
  cfg.faces[0][0] = {sv::BcKind::nscbc_outflow, 101325.0, 0.25};
  cfg.faces[0][1] = {sv::BcKind::nscbc_outflow, 101325.0, 0.25};
  cfg.transport = sv::TransportModel::power_law;
  return cfg;
}

void still_air(sv::InflowState& st) {
  st.u = st.v = st.w = 0.0;
  st.T = 300.0;
  st.Y.fill(0.0);
  st.Y[0] = 0.233;
  st.Y[1] = 0.767;
}

}  // namespace

TEST(Nscbc, AcousticPulseLeavesWithSmallReflection) {
  const double L = 0.02;
  const int n = 128;
  auto cfg = open_air_1d(n, L);
  cfg.include_viscous = false;
  sv::Solver s(cfg);
  const double p0 = 101325.0, T0 = 300.0;
  const double rho0 = p0 * 28.85 / (8314.46 * T0);
  const double c0 = std::sqrt(1.4 * p0 / rho0);
  const double amp = 50.0;
  s.initialize([&](double x, double, double, sv::InflowState& st, double& p) {
    still_air(st);
    const double dp = amp * std::exp(-std::pow((x - 0.5 * L) / 0.001, 2));
    p = p0 + dp;
    st.u = dp / (rho0 * c0);  // right-running wave
    st.T = T0 * std::pow(p / p0, 0.4 / 1.4);
  });
  // Let the pulse (starting at 0.25 L) fully cross the right boundary and
  // its sponge layer, with margin.
  while (s.time() < 1.5 * L / c0) s.step(0.7 * s.stable_dt());
  const auto& prim = s.primitives();
  double resid = 0.0;
  for (int i = 0; i < n; ++i)
    resid = std::max(resid, std::abs(prim.p(i, 0, 0) - p0));
  // Reflected amplitude must be a small fraction of the incident pulse.
  EXPECT_LT(resid, 0.15 * amp);
}

TEST(Nscbc, UniformFlowThroughDomainStaysSteady) {
  const double L = 0.02;
  const int n = 96;
  auto cfg = open_air_1d(n, L);
  cfg.faces[0][0] = {sv::BcKind::nscbc_inflow, 101325.0, 0.25};
  cfg.inflow = [](double, double, double, sv::InflowState& st) {
    still_air(st);
    st.u = 30.0;
  };
  sv::Solver s(cfg);
  s.initialize([](double, double, double, sv::InflowState& st, double& p) {
    still_air(st);
    st.u = 30.0;
    p = 101325.0;
  });
  s.run(200);
  const auto& prim = s.primitives();
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(prim.u(i, 0, 0), 30.0, 0.5) << i;
    EXPECT_NEAR(prim.p(i, 0, 0), 101325.0, 400.0) << i;
    EXPECT_NEAR(prim.T(i, 0, 0), 300.0, 1.0) << i;
  }
}

TEST(Nscbc, AdvectedThermalBlobExitsCleanly) {
  const double L = 0.02;
  const int n = 96;
  auto cfg = open_air_1d(n, L);
  cfg.faces[0][0] = {sv::BcKind::nscbc_inflow, 101325.0, 0.25};
  const double u0 = 60.0;
  cfg.inflow = [&](double, double, double, sv::InflowState& st) {
    still_air(st);
    st.u = u0;
  };
  sv::Solver s(cfg);
  s.initialize([&](double x, double, double, sv::InflowState& st, double& p) {
    still_air(st);
    st.u = u0;
    st.T = 300.0 + 150.0 * std::exp(-std::pow((x - 0.5 * L) / 0.002, 2));
    p = 101325.0;
  });
  // Advect the blob through the outflow: t = 0.7 L / u0.
  while (s.time() < 0.7 * L / u0) s.step(0.7 * s.stable_dt());
  const auto& prim = s.primitives();
  double worst_T = 0.0, worst_p = 0.0;
  for (int i = 0; i < n; ++i) {
    worst_T = std::max(worst_T, std::abs(prim.T(i, 0, 0) - 300.0));
    worst_p = std::max(worst_p, std::abs(prim.p(i, 0, 0) - 101325.0));
  }
  EXPECT_LT(worst_T, 25.0);     // blob (150 K) is gone
  EXPECT_LT(worst_p, 2000.0);   // no strong acoustic junk left behind
}

TEST(Nscbc, InflowTracksTimeVaryingVelocity) {
  const double L = 0.01;
  auto cfg = open_air_1d(64, L);
  cfg.faces[0][0] = {sv::BcKind::nscbc_inflow, 101325.0, 0.25};
  cfg.inflow = [](double t, double, double, sv::InflowState& st) {
    still_air(st);
    st.u = 20.0 + 5.0 * std::sin(2.0e5 * t);
  };
  sv::Solver s(cfg);
  s.initialize([](double, double, double, sv::InflowState& st, double& p) {
    still_air(st);
    st.u = 20.0;
    p = 101325.0;
  });
  s.run(100);
  const auto& prim = s.primitives();
  const double expect_u = 20.0 + 5.0 * std::sin(2.0e5 * s.time());
  EXPECT_NEAR(prim.u(0, 0, 0), expect_u, 0.05);
}

TEST(Nscbc, Reacting1DFlamePropagates) {
  // End-to-end reacting run: H2/air with a hot ignition kernel against one
  // outflow; a flame must form (T rises toward adiabatic) and consume H2.
  auto mech = std::make_shared<const chem::Mechanism>(chem::h2_li2004());
  sv::Config cfg;
  cfg.mech = mech;
  const double L = 0.006;
  const int n = 192;
  cfg.x = {n, L, false};
  cfg.y = {1, 1.0, false};
  cfg.z = {1, 1.0, false};
  cfg.faces[0][0] = {sv::BcKind::nscbc_outflow, 101325.0, 0.25};
  cfg.faces[0][1] = {sv::BcKind::nscbc_outflow, 101325.0, 0.25};
  cfg.transport = sv::TransportModel::constant_lewis;

  auto Yu = chem::premixed_fuel_air_Y(*mech, "H2", 1.0);
  sv::Solver s(cfg);
  s.initialize([&](double x, double, double, sv::InflowState& st, double& p) {
    st.u = st.v = st.w = 0.0;
    // Hot kernel at the right end.
    st.T = 300.0 + 1400.0 * std::exp(-std::pow((x - 0.85 * L) / 0.0006, 2));
    for (int i = 0; i < mech->n_species(); ++i) st.Y[i] = Yu[i];
    p = 101325.0;
  });

  const auto& l = s.layout();
  const int ih2 = mech->index("H2");
  auto h2_mass = [&]() {
    const auto& prim = s.primitives();
    double m = 0.0;
    for (int i = 0; i < l.nx; ++i)
      m += prim.rho(i, 0, 0) * prim.Y[ih2](i, 0, 0);
    return m;
  };
  const double m0 = h2_mass();
  // Run 30 microseconds of physical time.
  while (s.time() < 3.0e-5) s.step(0.7 * s.stable_dt());

  const auto& prim = s.primitives();
  double T_max = 0.0;
  for (int i = 0; i < l.nx; ++i) T_max = std::max(T_max, prim.T(i, 0, 0));
  EXPECT_GT(T_max, 2000.0);         // burning
  EXPECT_LT(T_max, 3400.0);         // physically bounded
  EXPECT_LT(h2_mass(), 0.995 * m0); // fuel consumed
  // Everything stays finite and mass fractions normalized.
  for (int i = 0; i < l.nx; ++i) {
    double sum = 0.0;
    for (const auto& Y : prim.Y) sum += Y(i, 0, 0);
    EXPECT_NEAR(sum, 1.0, 1e-10);
    EXPECT_TRUE(std::isfinite(prim.p(i, 0, 0)));
  }
}

TEST(Nscbc, SpongeLayerRelaxesPressureTowardTarget) {
  // The optional absorbing layer must pull pressure toward p_target inside
  // its width and leave the rest of the domain alone.
  const double L = 0.02;
  const int n = 96;
  auto cfg = open_air_1d(n, L);
  cfg.faces[0][1].sponge_width = 0.2 * L;
  cfg.faces[0][1].sponge_strength = 0.5;
  cfg.include_viscous = false;
  sv::Solver s(cfg);
  const double p0 = 101325.0;
  // Uniform over-pressure everywhere: only the sponge region (plus what
  // the outflow characteristics remove) should relax quickly.
  s.initialize([&](double, double, double, sv::InflowState& st, double& p) {
    still_air(st);
    p = p0 + 500.0;
  });
  const auto& prim0 = s.primitives();
  const double p_start_wall = prim0.p(n - 1, 0, 0);
  s.run(150);
  const auto& prim = s.primitives();
  // Wall region relaxed visibly toward p0.
  EXPECT_LT(std::abs(prim.p(n - 1, 0, 0) - p0),
            0.7 * std::abs(p_start_wall - p0));
  // Everything stays finite and bounded.
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(std::isfinite(prim.p(i, 0, 0)));
    EXPECT_LT(std::abs(prim.p(i, 0, 0) - p0), 1000.0);
  }
}
