// Kinetics engine tests: equation parsing, unit conversion, rate laws,
// falloff, third bodies, equilibrium reverse rates, and reactor behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "chem/mechanism_builder.hpp"
#include "chem/mechanisms.hpp"
#include "chem/mixing.hpp"
#include "chem/reactor.hpp"
#include "chem/species_db.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"

namespace chem = s3d::chem;

namespace {
const chem::Mechanism& h2mech() {
  static const chem::Mechanism m = chem::h2_li2004();
  return m;
}
}  // namespace

TEST(MechParser, ParsesSimpleReversible) {
  chem::MechBuilder b(chem::species_list({"H2", "O2", "OH", "H2O", "N2", "H", "O"}));
  b.add("H+O2<=>O+OH", 1.0e13, 0.0, 0.0);
  auto m = b.build("t");
  const auto& rx = m.reaction(0);
  EXPECT_TRUE(rx.reversible);
  EXPECT_EQ(rx.type, chem::Reaction::Type::elementary);
  ASSERT_EQ(rx.reactants.size(), 2u);
  ASSERT_EQ(rx.products.size(), 2u);
}

TEST(MechParser, ParsesIrreversible) {
  chem::MechBuilder b(chem::species_list({"CH4", "O2", "CO", "H2O", "N2"}));
  b.add("CH4+1.5O2=>CO+2H2O", 1.0e9, 0.0, 0.0);
  auto m = b.build("t");
  const auto& rx = m.reaction(0);
  EXPECT_FALSE(rx.reversible);
  // 1.5 O2 coefficient parsed.
  double nu_o2 = 0.0, nu_h2o = 0.0;
  for (auto& t : rx.reactants)
    if (t.species == m.index("O2")) nu_o2 = t.nu;
  for (auto& t : rx.products)
    if (t.species == m.index("H2O")) nu_h2o = t.nu;
  EXPECT_DOUBLE_EQ(nu_o2, 1.5);
  EXPECT_DOUBLE_EQ(nu_h2o, 2.0);
}

TEST(MechParser, MergesRepeatedSpecies) {
  chem::MechBuilder b(chem::species_list({"H", "H2", "N2"}));
  b.add("H+H+M<=>H2+M", 1.0e18, -1.0, 0.0);
  auto m = b.build("t");
  const auto& rx = m.reaction(0);
  EXPECT_EQ(rx.type, chem::Reaction::Type::three_body);
  ASSERT_EQ(rx.reactants.size(), 1u);
  EXPECT_DOUBLE_EQ(rx.reactants[0].nu, 2.0);
}

TEST(MechParser, DetectsFalloff) {
  chem::MechBuilder b(chem::species_list({"H", "O2", "HO2", "N2"}));
  b.add("H+O2(+M)<=>HO2(+M)", 1.475e12, 0.6, 0.0).low(6.366e20, -1.72, 524.8);
  auto m = b.build("t");
  EXPECT_EQ(m.reaction(0).type, chem::Reaction::Type::falloff);
}

TEST(MechParser, RejectsUnknownSpecies) {
  chem::MechBuilder b(chem::species_list({"H2", "N2"}));
  EXPECT_THROW(b.add("H2+XYZ<=>H2+N2", 1.0, 0.0, 0.0), s3d::Error);
}

TEST(MechParser, RejectsMissingEquals) {
  chem::MechBuilder b(chem::species_list({"H2", "N2"}));
  EXPECT_THROW(b.add("H2+N2", 1.0, 0.0, 0.0), s3d::Error);
}

TEST(Kinetics, ArrheniusUnitConversionBimolecular) {
  // k_cgs [cm^3/mol/s] must become k_si [m^3/kmol/s]: factor 1e-3.
  chem::MechBuilder b(chem::species_list({"H2", "O2", "N2"}));
  b.add("H2+O2=>H2+O2", 1.0e13, 0.0, 0.0);  // identity reaction, rate only
  auto m = b.build("t");
  EXPECT_NEAR(m.reaction(0).fwd.A, 1.0e10, 1e-3);
}

TEST(Kinetics, ActivationEnergyConversion) {
  chem::MechBuilder b(chem::species_list({"H2", "O2", "N2"}));
  b.add("H2+O2=>H2+O2", 1.0, 0.0, 1987.20425864083);
  auto m = b.build("t");
  // Ea = 1000 * Ru_cal cal/mol => E/R = 1000 K.
  EXPECT_NEAR(m.reaction(0).fwd.E_R, 1000.0, 1e-9);
}

TEST(Kinetics, ProductionRatesConserveMass) {
  // sum_i W_i wdot_i == 0 for any state (element conservation).
  const auto& m = h2mech();
  std::vector<double> c(m.n_species());
  for (int i = 0; i < m.n_species(); ++i) c[i] = 1e-3 * (i + 1);
  std::vector<double> wdot(m.n_species());
  for (double T : {500.0, 1000.0, 1500.0, 2500.0}) {
    m.production_rates(T, c, wdot);
    double mass_rate = 0.0, scale = 0.0;
    for (int i = 0; i < m.n_species(); ++i) {
      mass_rate += wdot[i] * m.W(i);
      scale += std::abs(wdot[i]) * m.W(i);
    }
    EXPECT_LE(std::abs(mass_rate), 1e-10 * std::max(scale, 1e-30)) << T;
  }
}

TEST(Kinetics, InertSpeciesHasZeroProductionRate) {
  const auto& m = h2mech();
  std::vector<double> c(m.n_species(), 1e-3);
  std::vector<double> wdot(m.n_species());
  m.production_rates(1200.0, c, wdot);
  EXPECT_DOUBLE_EQ(wdot[m.index("N2")], 0.0);
}

TEST(Kinetics, EquilibriumStateHasVanishingNetRates) {
  // Drive a reactor close to equilibrium, then verify that every reaction's
  // net rate of progress is small relative to its gross rate.
  const auto& m = h2mech();
  auto Y0 = chem::premixed_fuel_air_Y(m, "H2", 1.0);
  auto [Teq, Yeq] = chem::equilibrium_products(m, 1400.0, 101325.0, Y0, 0.02);
  EXPECT_GT(Teq, 2200.0);  // hot products
  std::vector<double> c(m.n_species()), q(m.n_reactions());
  const double rho = m.density(101325.0, Teq, Yeq);
  m.concentrations(rho, Yeq, c);
  m.rates_of_progress(Teq, c, q);
  std::vector<double> wdot(m.n_species());
  m.production_rates(Teq, c, wdot);
  // Net production of the major species must be tiny compared to the
  // equilibrium concentration over a flame time scale.
  for (const char* sp : {"H2O", "O2", "H2"}) {
    const int i = m.index(sp);
    EXPECT_LT(std::abs(wdot[i]) * 1e-4, std::max(c[i], 1e-8) * 0.05) << sp;
  }
}

TEST(Kinetics, ThirdBodyEfficiencyIncreasesRate) {
  // H2+M<=>H+H+M with H2O efficiency 12: adding H2O at fixed total
  // concentration raises the dissociation rate.
  const auto& m = h2mech();
  std::vector<double> c1(m.n_species(), 0.0), c2(m.n_species(), 0.0);
  c1[m.index("H2")] = 0.005;
  c1[m.index("N2")] = 0.035;
  c2[m.index("H2")] = 0.005;
  c2[m.index("N2")] = 0.015;
  c2[m.index("H2O")] = 0.020;
  std::vector<double> q1(m.n_reactions()), q2(m.n_reactions());
  m.rates_of_progress(2400.0, c1, q1);
  m.rates_of_progress(2400.0, c2, q2);
  // Reaction 4 (0-based) is H2+M<=>H+H+M.
  EXPECT_GT(q2[4], q1[4] * 2.0);
}

TEST(Kinetics, FalloffApproachesHighPressureLimit) {
  // At very high pressure k -> k_inf; at low pressure k ~ k0[M].
  const auto& m = h2mech();
  const int r_ho2 = 8;  // H+O2(+M)<=>HO2(+M)
  ASSERT_EQ(m.reaction(r_ho2).type, chem::Reaction::Type::falloff);
  auto qrate = [&](double ctot) {
    std::vector<double> c(m.n_species(), 0.0);
    c[m.index("H")] = 1e-6 * ctot;
    c[m.index("O2")] = 0.2 * ctot;
    c[m.index("N2")] = 0.8 * ctot;
    std::vector<double> q(m.n_reactions());
    m.rates_of_progress(1000.0, c, q);
    // Normalize by [H][O2] to get the effective bimolecular k.
    return q[r_ho2] / (c[m.index("H")] * c[m.index("O2")]);
  };
  const double k_low = qrate(1e-6);
  const double k_mid = qrate(1e-2);
  const double k_high = qrate(1e4);
  EXPECT_LT(k_low, k_mid);
  EXPECT_LT(k_mid, k_high * 1.001);
  // k at huge pressure is within 5% of k_inf.
  const double lnT = std::log(1000.0);
  const double kinf = m.reaction(r_ho2).fwd.k(1000.0, lnT);
  EXPECT_NEAR(k_high, kinf, 0.05 * kinf);
}

TEST(Kinetics, HeatReleaseIsPositiveMidIgnition) {
  // During the induction phase heat release can be endothermic (chain
  // branching); once the temperature is rising it must be positive. Advance
  // a reactor until T has climbed 150 K and evaluate HRR there.
  const auto& m = h2mech();
  auto Y0 = chem::premixed_fuel_air_Y(m, "H2", 1.0);
  chem::ConstPressureReactor r(m, 101325.0);
  r.set_state(1200.0, Y0);
  double t = 0.0;
  while (r.T() < 1350.0 && t < 2e-3) {
    t += 2e-6;
    r.advance(t);
  }
  ASSERT_GE(r.T(), 1350.0) << "mixture failed to ignite";
  std::vector<double> c(m.n_species());
  const double rho = m.density(101325.0, r.T(), r.Y());
  m.concentrations(rho, r.Y(), c);
  EXPECT_GT(m.heat_release_rate(r.T(), c), 0.0);
}

// ---- Reactors / ignition ----

TEST(Reactor, H2AirIgnitesAboveCrossover) {
  // The paper's coflow at 1100 K is above crossover: ignition must occur,
  // and fast (tens of microseconds at 1 atm for stoichiometric H2/air).
  const auto& m = h2mech();
  auto Y = chem::premixed_fuel_air_Y(m, "H2", 1.0);
  const double tau = chem::ignition_delay(m, 1100.0, 101325.0, Y, 2e-3);
  ASSERT_GT(tau, 0.0);
  EXPECT_LT(tau, 1e-3);
}

TEST(Reactor, IgnitionDelayDecreasesWithTemperature) {
  const auto& m = h2mech();
  auto Y = chem::premixed_fuel_air_Y(m, "H2", 1.0);
  const double tau_lo = chem::ignition_delay(m, 1050.0, 101325.0, Y, 5e-3);
  const double tau_hi = chem::ignition_delay(m, 1300.0, 101325.0, Y, 5e-3);
  ASSERT_GT(tau_lo, 0.0);
  ASSERT_GT(tau_hi, 0.0);
  EXPECT_LT(tau_hi, tau_lo);
}

TEST(Reactor, LeanMixtureIgnitesFasterInHotAir) {
  // Paper section 6.3: "ignition occurs first under hot, fuel-lean
  // conditions where ignition delays are shorter". Mimic: mix fuel stream
  // (400 K) with hot air (1100 K) at two mixture fractions; the leaner
  // (hotter) one must ignite sooner.
  const auto& m = h2mech();
  auto Y_fu = chem::stream_Y_from_X(m, {{"H2", 0.65}, {"N2", 0.35}});
  auto Y_ox = chem::stream_Y_from_X(m, {{"O2", 0.21}, {"N2", 0.79}});
  auto mix = [&](double Z) {
    std::vector<double> Y(m.n_species());
    for (int i = 0; i < m.n_species(); ++i)
      Y[i] = (1 - Z) * Y_ox[i] + Z * Y_fu[i];
    // Enthalpy-linear mixing temperature.
    const double h = (1 - Z) * m.h_mass_mix(1100.0, Y_ox) +
                     Z * m.h_mass_mix(400.0, Y_fu);
    const double T = m.T_from_h(h, Y, 900.0);
    return std::pair{T, Y};
  };
  auto [T_lean, Y_lean] = mix(0.05);
  auto [T_rich, Y_rich] = mix(0.40);
  EXPECT_GT(T_lean, T_rich);
  const double tau_lean =
      chem::ignition_delay(m, T_lean, 101325.0, Y_lean, 5e-3);
  const double tau_rich =
      chem::ignition_delay(m, T_rich, 101325.0, Y_rich, 5e-3);
  ASSERT_GT(tau_lean, 0.0);
  EXPECT_TRUE(tau_rich < 0.0 || tau_lean < tau_rich);
}

TEST(Reactor, ConstPressureConservesEnthalpy) {
  const auto& m = h2mech();
  auto Y0 = chem::premixed_fuel_air_Y(m, "H2", 0.8);
  chem::ConstPressureReactor r(m, 101325.0);
  r.set_state(1200.0, Y0);
  const double h0 = m.h_mass_mix(1200.0, Y0);
  r.advance(1e-3);
  const double h1 = m.h_mass_mix(r.T(), r.Y());
  EXPECT_NEAR(h1, h0, 2e-3 * std::abs(h0) + 2e3);
}

TEST(Reactor, MassFractionsStayNormalized) {
  const auto& m = h2mech();
  auto Y0 = chem::premixed_fuel_air_Y(m, "H2", 1.0);
  chem::ConstPressureReactor r(m, 101325.0);
  r.set_state(1250.0, Y0);
  auto hist = r.advance_recorded(5e-4, 5e-5);
  for (const auto& Y : hist.Y) {
    const double s = std::accumulate(Y.begin(), Y.end(), 0.0);
    EXPECT_NEAR(s, 1.0, 1e-9);
    for (double y : Y) EXPECT_GE(y, 0.0);
  }
}

TEST(Reactor, HO2PrecedesOHDuringAutoignition) {
  // The paper's key chemical marker (fig. 10): HO2 accumulates before OH
  // appears during autoignition.
  const auto& m = h2mech();
  auto Y0 = chem::premixed_fuel_air_Y(m, "H2", 0.4);
  chem::ConstPressureReactor r(m, 101325.0);
  r.set_state(1100.0, Y0);
  auto hist = r.advance_recorded(4e-4, 2e-6);
  const int iho2 = m.index("HO2");
  const int ioh = m.index("OH");
  // Time at which each radical first crosses half of its own peak.
  auto half_peak_time = [&](int sp) {
    double peak = 0.0;
    for (const auto& Y : hist.Y) peak = std::max(peak, Y[sp]);
    for (std::size_t s = 0; s < hist.Y.size(); ++s)
      if (hist.Y[s][sp] > 0.5 * peak) return hist.t[s];
    return hist.t.back();
  };
  EXPECT_LT(half_peak_time(iho2), half_peak_time(ioh));
}

TEST(Reactor, TwoStepCH4Burns) {
  const auto m = chem::ch4_bfer2step();
  auto Y0 = chem::premixed_fuel_air_Y(m, "CH4", 0.7);
  auto [Teq, Yeq] = chem::equilibrium_products(m, 1500.0, 101325.0, Y0, 0.05);
  EXPECT_GT(Teq, 2000.0);
  EXPECT_LT(Yeq[m.index("CH4")], 1e-6);
  EXPECT_GT(Yeq[m.index("CO2")], 0.05);
}

TEST(Reactor, AdiabaticFlameTemperatureStoichH2Air) {
  // T_ad for stoichiometric H2/air from 300 K is ~2390 K (equilibrium,
  // with dissociation). Allow a generous band.
  const auto& m = h2mech();
  auto Y0 = chem::premixed_fuel_air_Y(m, "H2", 1.0);
  // Start warm so the integration is quick; constant-pressure enthalpy
  // conservation makes the end state match the 300 K adiabatic state only
  // if we start at 300 K, so start there but allow longer burn time.
  const double h0 = m.h_mass_mix(300.0, Y0);
  chem::ConstPressureReactor r(m, 101325.0);
  // Kick with a high temperature but identical enthalpy is impossible;
  // instead ignite at 1200 K and correct: compare against the adiabatic
  // temperature computed from enthalpy balance at the reactor's own h0.
  r.set_state(1200.0, Y0);
  r.advance(5e-3, 1e-6, 1e-10);
  const double h_start = m.h_mass_mix(1200.0, Y0);
  // Equilibrium temperature at h_start should exceed the 300-K-reactants
  // value ~2390 K because we added sensible enthalpy.
  EXPECT_GT(r.T(), 2390.0);
  EXPECT_LT(r.T(), 3200.0);
  (void)h0;
  (void)h_start;
}
