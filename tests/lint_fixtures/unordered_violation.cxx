// s3dlint fixture: unordered containers in a deterministic planning path.
// (No #includes: the token rule would fire on the header names themselves,
// and fixtures are lexed, never compiled.)

struct Plan {
  std::unordered_map<int, double> cost;  // finding: iteration-order hazard
  std::unordered_set<int> owners;        // finding
  std::map<int, double> fine;            // ordered: no finding
};

// s3dlint:allow(unordered): fixture — waived reference site
std::unordered_map<int, int> waived_cache;
