// s3dlint fixture: mentions of exp/log in comments and strings must NOT
// fire — the lexer keeps prose out of the token stream. Use std::exp here.
const char* kDoc = "call std::log(T) once per cell; pow() is banned";
/* block comment: exp( log( pow( */
double clean(double T) { return T * T; }
