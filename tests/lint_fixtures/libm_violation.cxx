// s3dlint fixture: libm transcendentals outside a whitelisted TU.
// Scanned by test_s3dlint.cpp under the fake path src/solver/fixture.cpp;
// the .cxx extension keeps the real lint walk (and the build) away.
#include <cmath>

double rate_wrong(double T) {
  return std::exp(-1.0 / T);  // finding: exp outside a shared kernel
}

double stray_log(double T) { return std::log(T); }  // finding: log

template <class T>
double member_call_is_fine(T& obj, T* p) {
  return obj.exp(2.0) + p->pow(2.0);  // member calls: no finding
}

double waived_site(double T) {
  // s3dlint:allow(libm): fixture — deliberately waived reference site
  return std::pow(T, 1.5);
}

double multi_line_waived(double T) {
  // s3dlint:allow(libm): standalone waiver reaches the call two lines down
  const double f =
      std::exp(T);
  return f;
}
