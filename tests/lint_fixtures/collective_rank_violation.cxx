// s3dlint fixture: vmpi collectives under rank-conditional branches.
struct Comm {
  int rank() const;
  void barrier();
  double allreduce_sum(double v);
};

void bad_braced(Comm& comm, int rank) {
  if (rank == 0) {
    comm.barrier();  // finding: only rank 0 reaches this
  }
}

void bad_unbraced(Comm& comm, int rank) {
  if (rank != 0) comm.allreduce_sum(1.0);  // finding: unbraced body
}

void bad_else(Comm& comm, int my_rank) {
  if (my_rank == 0) {
    volatile int x = 1;
    (void)x;
  } else {
    comm.barrier();  // finding: the else of a rank-conditional if
  }
}

void good_hoisted(Comm& comm, int rank) {
  double local = 0.0;
  if (rank == 0) local = 1.0;     // rank-conditional *value* is fine
  comm.allreduce_sum(local);      // collective outside the branch: clean
}

void good_waived(Comm& comm, int rank) {
  if (rank == 0) {
    // s3dlint:allow(collective-rank): fixture — waived reference site
    comm.barrier();
  }
}
