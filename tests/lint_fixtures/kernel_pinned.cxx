// s3dlint fixture: a registered shared row kernel that still carries the
// noinline pin (the compliant shape).
__attribute__((noinline)) static void fixture_row(const double* in,
                                                  double* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = in[i] * 2.0;
}

void fixture_row_caller(const double* in, double* out, int n) {
  fixture_row(in, out, n);  // call sites don't need the attribute
}
