// s3dlint fixture: the "src side" of the registry cross-reference —
// defines the dotted names the fixture test file may reference.
void counters() {
  const char* a = "health.fixture_rollbacks";
  const char* b = "ckpt.fixture.bytes";
  const char* c = "chem.fixture.batch_cells";
  const char* d = "scenario.fixture.build";
  const char* e = "analysis.fixture.samples";
  (void)a;
  (void)b;
  (void)c;
  (void)d;
  (void)e;
}
