// s3dlint fixture: the "tests side" of the registry cross-reference.
void refs() {
  const char* ok = "health.fixture_rollbacks";       // defined: clean
  const char* prefix = "ckpt.fixture.";              // concat base: clean
  const char* typo = "health.fixture_rollbacksx";    // finding: typo'd
  const char* missing = "chem.fixture.never_defined";  // finding
  const char* file_like = "ckpt.fixture.rst";        // skip_ext: clean
  const char* plain = "not a registry name";         // shape: clean
  const char* s_ok = "scenario.fixture.build";       // defined: clean
  const char* s_typo = "scenario.fixture.buidl";     // finding: typo'd
  const char* a_ok = "analysis.fixture.samples";     // defined: clean
  const char* a_missing = "analysis.fixture.never";  // finding
  // s3dlint:allow(xref): fixture — waived reference site
  const char* waived = "health.fixture_waived_name";
  (void)ok;
  (void)prefix;
  (void)typo;
  (void)missing;
  (void)file_like;
  (void)plain;
  (void)waived;
  (void)s_ok;
  (void)s_typo;
  (void)a_ok;
  (void)a_missing;
}
