// s3dlint fixture: the same kernel with the noinline attribute stripped —
// the exact regression the registry rule exists to catch.
static void fixture_row(const double* in, double* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = in[i] * 2.0;
}

void fixture_row_caller(const double* in, double* out, int n) {
  fixture_row(in, out, n);
}
