// Scenario plugin registry suite (ctest -L plugin): registered names,
// typed error paths (unknown scenario, duplicate registration, malformed
// / out-of-range --set overrides routed through the Config::validate()
// machinery), and the registry-vs-direct equivalence pin — a CaseSetup
// built through ScenarioRegistry::build must integrate bitwise
// identically to one built by calling the case factory directly
// (DESIGN.md §15).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>

#include "common/hash.hpp"
#include "solver/cases.hpp"
#include "solver/scenario.hpp"
#include "solver/solver.hpp"

namespace sv = s3d::solver;

namespace {

std::uint64_t state_checksum(const sv::Solver& s) {
  s3d::Fnv1a64 h;
  const auto& l = s.layout();
  for (int v = 0; v < s.state().nv(); ++v)
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i)
          h.update_value(s.state().at(v, i, j, k));
  h.update_value(s.time());
  return h.digest();
}

bool state_all_finite(const sv::Solver& s) {
  const auto& l = s.layout();
  for (int v = 0; v < s.state().nv(); ++v)
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i)
          if (!std::isfinite(s.state().at(v, i, j, k))) return false;
  return true;
}

}  // namespace

TEST(ScenarioRegistry, ListsEveryBuiltinSorted) {
  const auto names = sv::ScenarioRegistry::instance().names();
  const std::vector<std::string> expect = {
      "bunsen",       "counterflow_ignition", "hit_autoignition",
      "lifted_jet",   "pressure_wave",        "temporal_jet"};
  ASSERT_EQ(names.size(), expect.size());
  EXPECT_EQ(names, expect) << "registry must stay a deterministic "
                              "ordered map";
}

TEST(ScenarioRegistry, UnknownNameListsRegisteredScenarios) {
  try {
    sv::ScenarioRegistry::instance().at("no_such_case");
    FAIL() << "expected ScenarioError";
  } catch (const sv::ScenarioError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no_such_case"), std::string::npos);
    EXPECT_NE(msg.find("lifted_jet"), std::string::npos);
    EXPECT_NE(msg.find("pressure_wave"), std::string::npos);
  }
}

TEST(ScenarioRegistry, DuplicateRegistrationThrows) {
  sv::Scenario dup;
  dup.name = "pressure_wave";
  dup.description = "imposter";
  dup.make = [](const sv::ParamMap&) { return sv::CaseSetup{}; };
  EXPECT_THROW(sv::ScenarioRegistry::instance().add(std::move(dup)),
               sv::ScenarioError);
  // The failed insertion must not have displaced the original.
  EXPECT_EQ(sv::ScenarioRegistry::instance().at("pressure_wave").description
                .find("imposter"),
            std::string::npos);
}

TEST(ScenarioRegistry, UnknownParameterListsKnownKeys) {
  try {
    sv::ScenarioRegistry::instance().build("pressure_wave",
                                           {{"bogus", "1"}});
    FAIL() << "expected ConfigError";
  } catch (const sv::ConfigError& e) {
    const std::string msg = e.what();
    // s3dlint:allow(xref): field is composed at runtime from the key
    EXPECT_NE(msg.find("scenario.pressure_wave.bogus"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("two_d"), std::string::npos) << msg;
  }
}

TEST(ScenarioRegistry, MalformedValuesAreTypedConfigErrors) {
  auto& reg = sv::ScenarioRegistry::instance();
  // Non-numeric integer.
  try {
    reg.build("pressure_wave", {{"n", "abc"}});
    FAIL() << "expected ConfigError";
  } catch (const sv::ConfigError& e) {
    // s3dlint:allow(xref): field is composed at runtime from the key
    EXPECT_EQ(e.field(), "scenario.pressure_wave.n");
  }
  // Out-of-range integer.
  EXPECT_THROW(reg.build("pressure_wave", {{"n", "4"}}), sv::ConfigError);
  EXPECT_THROW(reg.build("pressure_wave", {{"n", "2048"}}), sv::ConfigError);
  // Malformed boolean and real.
  EXPECT_THROW(reg.build("pressure_wave", {{"two_d", "maybe"}}),
               sv::ConfigError);
  EXPECT_THROW(reg.build("lifted_jet", {{"u_jet", "fast"}}),
               sv::ConfigError);
  EXPECT_THROW(reg.build("lifted_jet", {{"transport", "spectral"}}),
               sv::ConfigError);
}

TEST(ScenarioRegistry, ParseHelpersRejectMalformedInput) {
  // Property sweep over representative malformed forms: every rejection
  // is a typed ConfigError carrying the offending field.
  for (const char* bad : {"", "x", "1.5", "1e3", "12 ", "0x10"})
    EXPECT_THROW(sv::parse_int_param("f", bad), sv::ConfigError) << bad;
  for (const char* bad : {"", "x", "1.5.2", "nanx", "1,5"})
    EXPECT_THROW(sv::parse_real_param("f", bad), sv::ConfigError) << bad;
  for (const char* bad : {"", "yes", "no", "2", "TRUE"})
    EXPECT_THROW(sv::parse_bool_param("f", bad), sv::ConfigError) << bad;
  EXPECT_EQ(sv::parse_int_param("f", "-42"), -42);
  EXPECT_DOUBLE_EQ(sv::parse_real_param("f", "2.5e-3"), 2.5e-3);
  EXPECT_TRUE(sv::parse_bool_param("f", "on"));
  EXPECT_FALSE(sv::parse_bool_param("f", "0"));

  sv::ParamMap kv;
  EXPECT_THROW(sv::parse_kv("f", "noequals", kv), sv::ConfigError);
  EXPECT_THROW(sv::parse_kv("f", "=value", kv), sv::ConfigError);
  sv::parse_kv("f", "a=b=c", kv);
  EXPECT_EQ(kv.at("a"), "b=c") << "first '=' splits; values may contain =";
}

TEST(ScenarioRegistry, DefaultsValidateForEveryScenario) {
  for (const auto& name : sv::ScenarioRegistry::instance().names()) {
    const auto cs = sv::ScenarioRegistry::instance().build(name);
    EXPECT_NO_THROW(cs.cfg.validate()) << name;
    EXPECT_TRUE(static_cast<bool>(cs.init)) << name;
  }
}

TEST(ScenarioRegistry, BuildMatchesDirectCaseConstructionBitwise) {
  const auto reg = sv::ScenarioRegistry::instance().build(
      "lifted_jet", {{"nx", "48"},
                     {"ny", "32"},
                     {"Lx", "0.005"},
                     {"Ly", "0.005"},
                     {"u_jet", "110"},
                     {"u_rms", "10"},
                     {"transport", "power_law"}});
  sv::LiftedJetParams prm;
  prm.nx = 48;
  prm.ny = 32;
  prm.Lx = 0.005;
  prm.Ly = 0.005;
  prm.u_jet = 110.0;
  prm.u_rms = 10.0;
  prm.transport = sv::TransportModel::power_law;
  const auto direct = sv::lifted_jet_case(prm);

  EXPECT_EQ(reg.Z_st, direct.Z_st);
  EXPECT_EQ(reg.Y_fuel, direct.Y_fuel);

  sv::Solver a(reg.cfg), b(direct.cfg);
  a.initialize(reg.init);
  b.initialize(direct.init);
  EXPECT_EQ(state_checksum(a), state_checksum(b)) << "initial condition";
  a.run(3, {}, 5);
  b.run(3, {}, 5);
  EXPECT_EQ(state_checksum(a), state_checksum(b)) << "3-step trajectory";
}

TEST(ScenarioRegistry, CounterflowIgnitionRunsFinite) {
  const auto cs = sv::ScenarioRegistry::instance().build(
      "counterflow_ignition",
      {{"nx", "32"}, {"ny", "16"}, {"Lx", "0.004"}, {"Ly", "0.002"}});
  sv::Solver s(cs.cfg);
  s.initialize(cs.init);
  s.run(2, {}, 5);
  EXPECT_TRUE(state_all_finite(s));
  EXPECT_GT(s.time(), 0.0);
}

TEST(ScenarioRegistry, HitAutoignitionRunsFinite) {
  const auto cs = sv::ScenarioRegistry::instance().build(
      "hit_autoignition", {{"n", "16"}});
  sv::Solver s(cs.cfg);
  s.initialize(cs.init);
  s.run(2, {}, 5);
  EXPECT_TRUE(state_all_finite(s));
  // The temperature spots must survive initialization: T range spans
  // the configured +/- dT band around T0.
  EXPECT_GT(cs.T_burnt, 1400.0) << "premixed endpoints must be populated";
  EXPECT_GT(cs.Y_o2_unburnt, cs.Y_o2_burnt);
}
