// s3dlint rule-efficacy suite (ctest -L lint, DESIGN.md §14).
//
// The clean-tree gate (lint.clean_tree) proves HEAD has zero findings —
// but a lint that finds nothing could also be a lint that *checks*
// nothing. These tests drive every rule over seeded-violation fixtures
// in tests/lint_fixtures/ (extension .cxx so the real lint walk and the
// build both ignore them) and assert each rule fires at the seeded lines,
// stays quiet on the compliant shapes, and honors waiver comments.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hpp"

namespace {

using s3dlint::Config;
using s3dlint::FileScan;
using s3dlint::Finding;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Lex a fixture file from tests/lint_fixtures/, presenting it to the
/// rules under a fake repo-relative path (scope decisions key on paths).
FileScan scan_fixture(const std::string& fixture, const std::string& as_path) {
  const std::string dir = S3DLINT_FIXTURE_DIR;
  return s3dlint::scan_file(as_path, slurp(dir + "/" + fixture));
}

std::vector<int> lines_of(const std::vector<Finding>& fs,
                          const std::string& rule) {
  std::vector<int> out;
  for (const auto& f : fs)
    if (f.rule == rule) out.push_back(f.line);
  std::sort(out.begin(), out.end());
  return out;
}

/// The libm rule config shared by the fixture tests.
Config libm_cfg() {
  Config cfg;
  cfg.libm_fns = {"exp", "log", "pow"};
  cfg.libm_scope = {"src/"};
  cfg.libm_tus = {"src/chem/thermo"};
  return cfg;
}

}  // namespace

TEST(S3dlintConfig, ParsesKeysAndRejectsUnknown) {
  Config cfg;
  std::string err;
  ASSERT_TRUE(s3dlint::parse_config(
      "# comment\n"
      "libm_fn exp log\n"
      "libm_scope src/solver\n"
      "kernel src/solver/solver.cpp rk_axpy_row\n"
      "xref_prefix health.\n",
      &cfg, &err))
      << err;
  EXPECT_EQ(cfg.libm_fns.size(), 2u);
  ASSERT_EQ(cfg.kernels.size(), 1u);
  EXPECT_EQ(cfg.kernels[0].name, "rk_axpy_row");

  Config bad;
  EXPECT_FALSE(s3dlint::parse_config("no_such_key 1\n", &bad, &err));
  EXPECT_NE(err.find("unknown key"), std::string::npos);
  EXPECT_FALSE(s3dlint::parse_config("kernel only_one_value\n", &bad, &err));
}

TEST(S3dlintConfig, CommittedConfigParses) {
  Config cfg;
  std::string err;
  const std::string root = S3DLINT_SOURCE_ROOT;
  ASSERT_TRUE(s3dlint::parse_config(
      slurp(root + "/tools/s3dlint/s3dlint.conf"), &cfg, &err))
      << err;
  // The registry must keep real teeth: shared kernels and the core
  // rule inputs are present.
  EXPECT_GE(cfg.kernels.size(), 10u);
  EXPECT_TRUE(cfg.libm_fns.count("exp"));
  EXPECT_TRUE(cfg.libm_fns.count("log"));
  EXPECT_TRUE(cfg.libm_fns.count("pow"));
  EXPECT_FALSE(cfg.xref_prefixes.empty());
  EXPECT_TRUE(cfg.collective_fns.count("barrier"));
}

TEST(S3dlintLibm, FiresOnSeededCallsHonorsWaiversSkipsMembers) {
  const auto f = scan_fixture("libm_violation.cxx", "src/solver/fixture.cpp");
  const auto findings = rule_libm(libm_cfg(), f);
  // Exactly the two seeded sites: the bare exp and the bare log. The
  // member calls, the trailing waiver, and the standalone waiver
  // covering a multi-line statement all stay quiet.
  EXPECT_EQ(lines_of(findings, "libm"), (std::vector<int>{7, 10}));
  for (const auto& fd : findings) EXPECT_EQ(fd.file, "src/solver/fixture.cpp");
}

TEST(S3dlintLibm, WhitelistedTuAndOutOfScopePathsAreExempt) {
  // Same content, presented as the whitelisted shared-kernel TU: clean.
  const auto tu = scan_fixture("libm_violation.cxx", "src/chem/thermo.cpp");
  EXPECT_TRUE(rule_libm(libm_cfg(), tu).empty());
  // And outside the scanned scope entirely (tests/): clean.
  const auto t = scan_fixture("libm_violation.cxx", "tests/fixture.cpp");
  EXPECT_TRUE(rule_libm(libm_cfg(), t).empty());
}

TEST(S3dlintLibm, ProseAndStringsNeverFire) {
  const auto f = scan_fixture("libm_prose.cxx", "src/solver/prose.cpp");
  EXPECT_TRUE(rule_libm(libm_cfg(), f).empty());
}

TEST(S3dlintUnordered, FiresOnContainersHonorsWaiver) {
  Config cfg;
  cfg.unordered_scope = {"src/solver"};
  cfg.unordered_types = {"unordered_map", "unordered_set"};
  const auto f =
      scan_fixture("unordered_violation.cxx", "src/solver/plan.cpp");
  const auto findings = rule_unordered(cfg, f);
  // The two container members fire; std::map and the waived global don't.
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "unordered");
  EXPECT_NE(findings[0].message.find("unordered_map"), std::string::npos);
  EXPECT_NE(findings[1].message.find("unordered_set"), std::string::npos);
  // Out of scope: clean.
  const auto t =
      scan_fixture("unordered_violation.cxx", "src/trace/plan.cpp");
  EXPECT_TRUE(rule_unordered(cfg, t).empty());
}

TEST(S3dlintCollectiveRank, FlagsBracedUnbracedAndElseBodies) {
  Config cfg;
  cfg.collective_scope = {"src/"};
  cfg.collective_fns = {"barrier", "allreduce_sum"};
  cfg.rank_idents = {"rank", "my_rank"};
  const auto f = scan_fixture("collective_rank_violation.cxx",
                              "src/solver/coll.cpp");
  const auto findings = rule_collective_rank(cfg, f);
  // Three seeded shapes fire: braced if, unbraced if, else branch. The
  // hoisted collective and the waived site stay quiet.
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_NE(findings[0].message.find("barrier"), std::string::npos);
  EXPECT_NE(findings[1].message.find("allreduce_sum"), std::string::npos);
  EXPECT_NE(findings[2].message.find("barrier"), std::string::npos);
}

TEST(S3dlintNoinline, PinnedKernelPassesStrippedKernelFails) {
  Config cfg;
  cfg.kernels = {{"src/solver/kern.cpp", "fixture_row"}};
  {
    const auto f = scan_fixture("kernel_pinned.cxx", "src/solver/kern.cpp");
    EXPECT_TRUE(rule_noinline_kernels(cfg, {f}).empty());
  }
  {
    const auto f = scan_fixture("kernel_lost.cxx", "src/solver/kern.cpp");
    const auto findings = rule_noinline_kernels(cfg, {f});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "noinline-kernel");
    EXPECT_NE(findings[0].message.find("noinline"), std::string::npos);
    EXPECT_NE(findings[0].message.find("fixture_row"), std::string::npos);
  }
}

TEST(S3dlintNoinline, MissingFileAndRenamedKernelAreReported) {
  Config cfg;
  cfg.kernels = {{"src/solver/gone.cpp", "fixture_row"},
                 {"src/solver/kern.cpp", "renamed_row"}};
  const auto f = scan_fixture("kernel_pinned.cxx", "src/solver/kern.cpp");
  const auto findings = rule_noinline_kernels(cfg, {f});
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].message.find("not found"), std::string::npos);
  EXPECT_NE(findings[1].message.find("not found"), std::string::npos);
}

TEST(S3dlintXref, TestReferencedNamesMustExistInSrc) {
  Config cfg;
  cfg.xref_prefixes = {"health.", "ckpt.", "chem.", "scenario.",
                       "analysis."};
  cfg.xref_skip_ext = {"rst"};
  const auto src = scan_fixture("xref_src.cxx", "src/trace/counters.cpp");
  const auto tst = scan_fixture("xref_test.cxx", "tests/test_fixture.cpp");
  const auto findings = rule_xref(cfg, {src, tst});
  // Exactly the typo'd counters and the never-defined names fire — one
  // pair from the original prefixes, one from the scenario./analysis.
  // registry prefixes; the defined names, the concatenation base, the
  // file-extension literal, the non-dotted string, and the waived name
  // stay quiet.
  ASSERT_EQ(findings.size(), 4u);
  // s3dlint:allow(xref): deliberately-undefined fixture names under test
  EXPECT_NE(findings[0].message.find("health.fixture_rollbacksx"),
            std::string::npos);
  // s3dlint:allow(xref): deliberately-undefined fixture names under test
  EXPECT_NE(findings[1].message.find("chem.fixture.never_defined"),
            std::string::npos);
  // s3dlint:allow(xref): deliberately-undefined fixture names under test
  EXPECT_NE(findings[2].message.find("scenario.fixture.buidl"),
            std::string::npos);
  // s3dlint:allow(xref): deliberately-undefined fixture names under test
  EXPECT_NE(findings[3].message.find("analysis.fixture.never"),
            std::string::npos);
  for (const auto& fd : findings) EXPECT_EQ(fd.rule, "xref");
}

TEST(S3dlintXref, ExtraAllowlistCoversBuiltNames) {
  Config cfg;
  cfg.xref_prefixes = {"chem."};
  // s3dlint:allow(xref): deliberately-undefined fixture name under test
  cfg.xref_extra = {"chem.fixture.never_defined"};
  const auto tst = scan_fixture("xref_test.cxx", "tests/test_fixture.cpp");
  EXPECT_TRUE(rule_xref(cfg, {tst}).empty());
}

TEST(S3dlintWaivers, TrailingCoversNextLineStandaloneCoversThree) {
  const auto f = s3dlint::scan_file(
      "src/x.cpp",
      "int a; // s3dlint:allow(libm): trailing\n"   // line 1
      "int b;\n"                                    // line 2: covered
      "int c;\n"                                    // line 3: not covered
      "// s3dlint:allow(unordered): standalone\n"   // line 4
      "int d;\n"                                    // 5: covered
      "int e;\n"                                    // 6: covered
      "int g;\n"                                    // 7: covered
      "int h;\n");                                  // 8: not covered
  EXPECT_TRUE(s3dlint::waived(f, "libm", 1));
  EXPECT_TRUE(s3dlint::waived(f, "libm", 2));
  EXPECT_FALSE(s3dlint::waived(f, "libm", 3));
  EXPECT_FALSE(s3dlint::waived(f, "unordered", 3));
  EXPECT_TRUE(s3dlint::waived(f, "unordered", 5));
  EXPECT_TRUE(s3dlint::waived(f, "unordered", 7));
  EXPECT_FALSE(s3dlint::waived(f, "unordered", 8));
  // A waiver for one rule never silences another.
  EXPECT_FALSE(s3dlint::waived(f, "unordered", 2));
}

TEST(S3dlintRunRules, AggregatesAndSortsFindings) {
  Config cfg = libm_cfg();
  cfg.unordered_scope = {"src/solver"};
  cfg.unordered_types = {"unordered_map", "unordered_set"};
  const auto a = scan_fixture("libm_violation.cxx", "src/solver/fixture.cpp");
  const auto b =
      scan_fixture("unordered_violation.cxx", "src/solver/plan.cpp");
  const auto findings = s3dlint::run_rules(cfg, {b, a});
  ASSERT_EQ(findings.size(), 4u);
  // Sorted by file then line regardless of scan order.
  EXPECT_TRUE(std::is_sorted(
      findings.begin(), findings.end(), [](const Finding& x, const Finding& y) {
        return std::tie(x.file, x.line) < std::tie(y.file, y.line);
      }));
  EXPECT_EQ(findings[0].file, "src/solver/fixture.cpp");
}
