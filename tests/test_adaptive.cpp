// Adaptive time-integration suite (ctest -L health / -L adaptive): the
// masked step_region contract, the embedded error estimator's
// no-perturbation guarantee, proactive stiff-region subcycling under
// run_guarded, the breach escalation ladder rung by rung, and the
// post-recovery dt restore (DESIGN.md §13).
//
// Builds with -DS3D_ADAPTIVE=OFF compile the controller away; the tests
// that exercise the ladder skip themselves there (the build-noadapt
// verify lane runs this suite to prove exactly that the legacy policy
// is what remains).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "chem/mechanisms.hpp"
#include "common/hash.hpp"
#include "resilience/fault.hpp"
#include "solver/dt_control.hpp"
#include "solver/health.hpp"
#include "solver/solver.hpp"
#include "trace/trace.hpp"
#include "vmpi/vmpi.hpp"

namespace sv = s3d::solver;
namespace chem = s3d::chem;
namespace fault = s3d::fault;
namespace vmpi = s3d::vmpi;
namespace trace = s3d::trace;

namespace {

sv::Config small_cfg() {
  sv::Config cfg;
  static auto mech =
      std::make_shared<const chem::Mechanism>(chem::air_inert());
  cfg.mech = mech;
  cfg.x = {24, 0.01, true};
  cfg.y = {12, 0.01, true};
  cfg.z = {1, 1.0, false};
  for (int a = 0; a < 3; ++a)
    for (auto& f : cfg.faces[a]) f.kind = sv::BcKind::periodic;
  cfg.transport = sv::TransportModel::power_law;
  return cfg;
}

void wavy_init(double x, double y, double z, sv::InflowState& st, double& p) {
  st.u = 3.0 * std::sin(2 * 3.14159265358979 * x / 0.01);
  st.v = 1.0 * std::cos(2 * 3.14159265358979 * y / 0.01);
  st.w = 0.5 * std::sin(2 * 3.14159265358979 * z / 0.01);
  st.T = 300.0 + 8.0 * std::sin(2 * 3.14159265358979 * (x + y) / 0.01);
  st.Y.fill(0.0);
  st.Y[0] = 0.233;
  st.Y[1] = 0.767;
  p = 101325.0;
}

struct FaultSession {
  explicit FaultSession(std::uint64_t seed = 2026) { fault::set_seed(seed); }
  ~FaultSession() { fault::reset(); }
};

/// Adaptive options tuned so the ladder is reachable in a short run.
sv::AdaptiveOptions adaptive_on() {
  sv::AdaptiveOptions ad;
  ad.enabled = true;
  ad.subcycle_cap = 4;  // keep masked substeps cheap in tests
  return ad;
}

std::uint64_t state_checksum(const sv::Solver& s) {
  s3d::Fnv1a64 h;
  const auto& l = s.layout();
  for (int v = 0; v < s.state().nv(); ++v)
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i)
          h.update_value(s.state().at(v, i, j, k));
  h.update_value(s.time());
  return h.digest();
}

bool state_all_finite(const sv::Solver& s) {
  const auto& l = s.layout();
  for (int v = 0; v < s.state().nv(); ++v)
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i)
          if (!std::isfinite(s.state().at(v, i, j, k))) return false;
  return true;
}

/// Bitwise interior comparison of two same-shape solvers.
bool interiors_bitwise_equal(const sv::Solver& a, const sv::Solver& b) {
  const auto& l = a.layout();
  for (int v = 0; v < a.state().nv(); ++v)
    for (int k = 0; k < l.nz; ++k)
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i) {
          const double x = a.state().at(v, i, j, k);
          const double y = b.state().at(v, i, j, k);
          if (std::memcmp(&x, &y, sizeof(double)) != 0) return false;
        }
  return true;
}

sv::BlockMap map_of(const sv::Solver& s, int block) {
  return sv::BlockMap(s.mesh().nx(), s.mesh().ny(), s.mesh().nz(), block,
                      s.layout(), s.offset());
}

}  // namespace

// ---------------------------------------------------------------------------
// step_region: the masked-commit contract.

TEST(StepRegion, FullDomainMaskMatchesPlainStep) {
  // With the filter idle and no inflow faces, a step_region over every
  // interior row must be bitwise the plain step (same kernels, same
  // arithmetic — the mask only restricts which rows commit).
  auto cfg = small_cfg();
  cfg.filter_interval = 1000;  // keep the filter out of both paths
  sv::Solver a(cfg), b(cfg);
  a.initialize(wavy_init);
  b.initialize(wavy_init);
  // Both solvers estimate dt so the Newton warm-start workspaces match
  // bitwise before the compared steps.
  const double dt = a.stable_dt();
  ASSERT_EQ(b.stable_dt(), dt);
  a.step(dt);

  const auto m = map_of(b, 8);
  std::vector<int> all(static_cast<std::size_t>(m.n_blocks()));
  for (int i = 0; i < m.n_blocks(); ++i) all[static_cast<std::size_t>(i)] = i;
  const auto segs = m.segments(all);
  b.step_region(dt, segs);

  EXPECT_TRUE(interiors_bitwise_equal(a, b));
  EXPECT_DOUBLE_EQ(a.time(), b.time());
  // The step counter stays with the caller on the masked path.
  EXPECT_EQ(a.steps_taken(), 1);
  EXPECT_EQ(b.steps_taken(), 0);
}

TEST(StepRegion, MaskedCommitLeavesFarFieldUntouched) {
  auto cfg = small_cfg();
  cfg.filter_interval = 1000;
  sv::Solver a(cfg), b(cfg);
  a.initialize(wavy_init);
  b.initialize(wavy_init);
  const double dt = a.stable_dt();
  ASSERT_EQ(b.stable_dt(), dt);
  const auto m = map_of(b, 8);
  const auto segs = m.segments(std::vector<int>{0});
  b.step_region(dt, segs);
  // Cells outside block 0 hold their initial values bitwise, while the
  // masked block actually advanced.
  const auto& l = a.layout();
  bool moved = false;
  for (int v = 0; v < a.state().nv(); ++v)
    for (int j = 0; j < l.ny; ++j)
      for (int i = 0; i < l.nx; ++i) {
        const double x = a.state().at(v, i, j, 0);  // initial value
        const double y = b.state().at(v, i, j, 0);
        if (m.block_of_global(i, j, 0) == 0) {
          if (std::memcmp(&x, &y, sizeof(double)) != 0) moved = true;
        } else {
          ASSERT_EQ(std::memcmp(&x, &y, sizeof(double)), 0)
              << "far-field cell mutated by a masked step";
        }
      }
  EXPECT_TRUE(moved) << "the masked block must actually integrate";
}

// ---------------------------------------------------------------------------
// Embedded error estimate.

TEST(ErrorEstimate, ArmedStepDoesNotPerturbState) {
  auto cfg = small_cfg();
  sv::Solver a(cfg), b(cfg);
  a.initialize(wavy_init);
  b.initialize(wavy_init);
  const double dt = a.stable_dt();
  ASSERT_EQ(b.stable_dt(), dt);
  const auto m = map_of(b, 8);
  std::vector<double> err;
  b.arm_error_estimate(m, 1e-6, 1e-4, &err);
  a.step(dt);
  b.step(dt);
  EXPECT_TRUE(interiors_bitwise_equal(a, b))
      << "the estimator must ride the step without changing it";
  ASSERT_EQ(err.size(), static_cast<std::size_t>(m.n_blocks()));
  bool any = false;
  for (double e : err) {
    ASSERT_TRUE(std::isfinite(e));
    ASSERT_GE(e, 0.0);
    if (e > 0.0) any = true;
  }
  EXPECT_TRUE(any) << "a real step must register a nonzero error";
  // One-shot: the next step accumulates nothing.
  const std::vector<double> keep = err;
  b.step(dt);
  EXPECT_EQ(err, keep);
}

TEST(ErrorEstimate, ScalesWithDt) {
  // The estimate is first order in the embedded pair: a larger dt must
  // produce a larger normalized error on the same state.
  auto cfg = small_cfg();
  sv::Solver a(cfg), b(cfg);
  a.initialize(wavy_init);
  b.initialize(wavy_init);
  const double dt = a.stable_dt();
  ASSERT_EQ(b.stable_dt(), dt);
  const auto ma = map_of(a, 8);
  const auto mb = map_of(b, 8);
  std::vector<double> ea, eb;
  a.arm_error_estimate(ma, 1e-6, 1e-4, &ea);
  b.arm_error_estimate(mb, 1e-6, 1e-4, &eb);
  a.step(dt);
  b.step(0.25 * dt);
  double max_a = 0.0, max_b = 0.0;
  for (double e : ea) max_a = std::max(max_a, e);
  for (double e : eb) max_b = std::max(max_b, e);
  EXPECT_GT(max_a, max_b);
}

// ---------------------------------------------------------------------------
// run_guarded with the controller: proactive subcycling.

TEST(AdaptiveGuard, CleanRunAtDefaultsMatchesLegacyPath) {
  // With loose tolerances nothing is stiff: the adaptive guard takes
  // exactly the legacy path and the final state is bitwise the
  // adaptive-off run.
  sv::Solver a(small_cfg()), b(small_cfg());
  a.initialize(wavy_init);
  b.initialize(wavy_init);
  sv::GuardOptions off;
  const auto ra = sv::run_guarded(a, 6, off);
  sv::GuardOptions on;
  on.adaptive = adaptive_on();
  const auto rb = sv::run_guarded(b, 6, on);
  EXPECT_TRUE(ra.completed);
  EXPECT_TRUE(rb.completed);
  EXPECT_TRUE(interiors_bitwise_equal(a, b));
  EXPECT_EQ(rb.subcycle_steps, 0);
  EXPECT_EQ(rb.discarded_cell_steps, 0);
  const auto& l = b.layout();
  EXPECT_EQ(rb.executed_cell_steps, 6L * l.nx * l.ny * l.nz);
}

TEST(AdaptiveGuard, TightToleranceDrivesProactiveSubcycling) {
#ifdef S3D_ADAPTIVE_OFF
  GTEST_SKIP() << "controller compiled out (S3D_ADAPTIVE=OFF)";
#endif
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  sv::GuardOptions opts;
  auto ad = adaptive_on();
  ad.atol = 1e-18;  // every block is "stiff" under this tolerance
  ad.rtol = 1e-12;
  opts.adaptive = ad;
  const auto rep = sv::run_guarded(s, 6, opts);
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.rollbacks, 0);
  EXPECT_GT(rep.subcycle_steps, 0)
      << "tight tolerances must trigger stiff-region subcycling";
  EXPECT_GT(rep.discarded_cell_steps, 0);  // redone masked cells
  EXPECT_TRUE(state_all_finite(s));
  EXPECT_EQ(rep.final_steps, 6);
}

TEST(AdaptiveGuard, ProactiveSubcyclingIsDeterministic) {
#ifdef S3D_ADAPTIVE_OFF
  GTEST_SKIP() << "controller compiled out (S3D_ADAPTIVE=OFF)";
#endif
  const auto run = [] {
    sv::Solver s(small_cfg());
    s.initialize(wavy_init);
    sv::GuardOptions opts;
    auto ad = adaptive_on();
    ad.atol = 1e-18;
    ad.rtol = 1e-12;
    opts.adaptive = ad;
    const auto rep = sv::run_guarded(s, 5, opts);
    EXPECT_TRUE(rep.completed);
    return state_checksum(s);
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// The escalation ladder, rung by rung.

TEST(Ladder, Rung1SubcyclesBreachingBlockWithoutGlobalRollback) {
#ifdef S3D_ADAPTIVE_OFF
  GTEST_SKIP() << "ladder compiled out (S3D_ADAPTIVE=OFF)";
#endif
  FaultSession fs_;
  fault::arm({.site = "solver.health",
              .kind = fault::Kind::corrupt,
              .nth = 2,
              .max_fires = 1});
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  sv::GuardOptions opts;
  opts.adaptive = adaptive_on();
  const auto rep = sv::run_guarded(s, 8, opts);
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.final_steps, 8);
  EXPECT_EQ(rep.rollbacks, 0) << "a localized breach must not go global";
  EXPECT_EQ(rep.subcycle_recoveries, 1);
  EXPECT_EQ(rep.local_rollbacks, 0);
  ASSERT_EQ(rep.events.size(), 1u);
  EXPECT_EQ(rep.events[0].rung, 1);
  EXPECT_EQ(rep.events[0].report.breach, sv::Breach::non_finite);
  EXPECT_DOUBLE_EQ(rep.events[0].dt_scale, 1.0)
      << "rungs 1-2 must not scale the global dt";
  EXPECT_DOUBLE_EQ(rep.dt_scale, 1.0);
  EXPECT_TRUE(state_all_finite(s));
  EXPECT_EQ(fault::fires_at("solver.health"), 1);
}

TEST(Ladder, ExhaustedSubcycleBudgetWidensToRung2) {
#ifdef S3D_ADAPTIVE_OFF
  GTEST_SKIP() << "ladder compiled out (S3D_ADAPTIVE=OFF)";
#endif
  FaultSession fs_;
  fault::arm({.site = "solver.health",
              .kind = fault::Kind::corrupt,
              .nth = 2,
              .max_fires = 1});
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  sv::GuardOptions opts;
  auto ad = adaptive_on();
  ad.max_subcycle_retries = 0;  // straight past rung 1
  opts.adaptive = ad;
  const auto rep = sv::run_guarded(s, 8, opts);
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.rollbacks, 0);
  EXPECT_EQ(rep.subcycle_recoveries, 0);
  EXPECT_EQ(rep.local_rollbacks, 1);
  ASSERT_EQ(rep.events.size(), 1u);
  EXPECT_EQ(rep.events[0].rung, 2);
  EXPECT_TRUE(state_all_finite(s));
}

TEST(Ladder, ExhaustedLocalBudgetsEscalateToGlobalRollback) {
#ifdef S3D_ADAPTIVE_OFF
  GTEST_SKIP() << "ladder compiled out (S3D_ADAPTIVE=OFF)";
#endif
  FaultSession fs_;
  fault::arm({.site = "solver.health",
              .kind = fault::Kind::corrupt,
              .nth = 2,
              .max_fires = 1});
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  sv::GuardOptions opts;
  auto ad = adaptive_on();
  ad.max_subcycle_retries = 0;
  ad.max_local_rollbacks = 0;
  ad.dt_recover_after = 0;  // keep the halved dt visible in the report
  opts.adaptive = ad;
  const auto rep = sv::run_guarded(s, 8, opts);
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.rollbacks, 1);
  EXPECT_EQ(rep.subcycle_recoveries, 0);
  EXPECT_EQ(rep.local_rollbacks, 0);
  ASSERT_EQ(rep.events.size(), 1u);
  EXPECT_EQ(rep.events[0].rung, 3);
  EXPECT_DOUBLE_EQ(rep.dt_scale, 0.5);
  EXPECT_GT(rep.discarded_cell_steps, 0);
  EXPECT_TRUE(state_all_finite(s));
}

TEST(Ladder, DtScaleRestoredAfterCleanStreak) {
#ifdef S3D_ADAPTIVE_OFF
  GTEST_SKIP() << "ladder compiled out (S3D_ADAPTIVE=OFF)";
#endif
  // Satellite fix: after a global-rung halving, a configured streak of
  // clean scans restores the controller-chosen dt instead of dragging
  // the halved step to the end of the run.
  FaultSession fs_;
  fault::arm({.site = "solver.health",
              .kind = fault::Kind::corrupt,
              .nth = 2,
              .max_fires = 1});
  sv::Solver s(small_cfg());
  s.initialize(wavy_init);
  sv::GuardOptions opts;
  auto ad = adaptive_on();
  ad.max_subcycle_retries = 0;
  ad.max_local_rollbacks = 0;  // force the global rung
  ad.dt_recover_after = 2;
  opts.adaptive = ad;
  const auto rep = sv::run_guarded(s, 10, opts);
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.rollbacks, 1);
  EXPECT_DOUBLE_EQ(rep.dt_scale, 1.0)
      << "the pre-breach dt must come back after the clean streak";
  EXPECT_TRUE(state_all_finite(s));
}

TEST(Ladder, LocalizedRecoveryIsDeterministic) {
#ifdef S3D_ADAPTIVE_OFF
  GTEST_SKIP() << "ladder compiled out (S3D_ADAPTIVE=OFF)";
#endif
  const auto run = [] {
    FaultSession fs_;
    fault::arm({.site = "solver.health",
                .kind = fault::Kind::corrupt,
                .nth = 3,
                .max_fires = 1});
    sv::Solver s(small_cfg());
    s.initialize(wavy_init);
    sv::GuardOptions opts;
    opts.adaptive = adaptive_on();
    const auto rep = sv::run_guarded(s, 8, opts);
    EXPECT_TRUE(rep.completed);
    EXPECT_EQ(rep.rollbacks, 0);
    EXPECT_EQ(rep.subcycle_recoveries, 1);
    return state_checksum(s);
  };
  EXPECT_EQ(run(), run());
}

TEST(Ladder, CollectiveLadderAgreesAcrossRanks) {
#ifdef S3D_ADAPTIVE_OFF
  GTEST_SKIP() << "ladder compiled out (S3D_ADAPTIVE=OFF)";
#endif
  FaultSession fs_;
  // Rank 0 alone reports the injected breach (global cell (0,0,0) ->
  // block 0); the ladder must take the identical localized action on
  // both ranks — including the rank that owns no cell of block 0.
  fault::arm({.site = "solver.health",
              .kind = fault::Kind::fail,
              .nth = 1,
              .rank = 0,
              .max_fires = 1});
  std::vector<sv::GuardReport> reps(2);
  vmpi::run(2, [&](vmpi::Comm& comm) {
    sv::Solver s(small_cfg(), comm, 2, 1, 1);
    s.initialize(wavy_init);
    sv::GuardOptions opts;
    opts.adaptive = adaptive_on();
    reps[comm.rank()] = sv::run_guarded(s, 6, opts, &comm);
  });
  for (int r = 0; r < 2; ++r) {
    EXPECT_TRUE(reps[r].completed) << "rank " << r;
    EXPECT_EQ(reps[r].rollbacks, 0) << "rank " << r;
    EXPECT_EQ(reps[r].subcycle_recoveries, 1) << "rank " << r;
    ASSERT_EQ(reps[r].events.size(), 1u) << "rank " << r;
    EXPECT_EQ(reps[r].events[0].rung, 1);
    EXPECT_EQ(reps[r].events[0].report.breach, sv::Breach::injected);
    EXPECT_EQ(reps[r].events[0].report.rank, 0);
  }
  EXPECT_EQ(reps[0].events[0].rolled_back_to,
            reps[1].events[0].rolled_back_to);
}

TEST(Ladder, GaugesAndCountersTraced) {
#ifdef S3D_ADAPTIVE_OFF
  GTEST_SKIP() << "ladder compiled out (S3D_ADAPTIVE=OFF)";
#endif
  trace::clear();
  trace::set_enabled(true);
  {
    FaultSession fs_;
    fault::arm({.site = "solver.health",
                .kind = fault::Kind::corrupt,
                .nth = 2,
                .max_fires = 1});
    sv::Solver s(small_cfg());
    s.initialize(wavy_init);
    sv::GuardOptions opts;
    opts.adaptive = adaptive_on();
    const auto rep = sv::run_guarded(s, 6, opts);
    EXPECT_TRUE(rep.completed);
  }
  trace::set_enabled(false);
  const auto sum = trace::summarize();
  const auto* rung1 = sum.find_counter("health.ladder.subcycle");
  const auto* nsub = sum.find_counter("health.subcycle_count");
  const auto* dt_min = sum.find_counter("health.dt_min");
  ASSERT_NE(rung1, nullptr) << "rung-1 counter missing from the trace";
  EXPECT_GE(rung1->total, 1.0);
  ASSERT_NE(nsub, nullptr) << "subcycle-count counter missing";
  EXPECT_GE(nsub->total, 2.0);
  ASSERT_NE(dt_min, nullptr) << "per-block dt_min gauge missing";
  EXPECT_TRUE(dt_min->is_gauge);
  EXPECT_GT(dt_min->total, 0.0);
  trace::clear();
}
