// Thermodynamics tests: NASA-7 evaluation, mixture relations (paper
// eqs. 5-9), and consistency identities.

#include <gtest/gtest.h>

#include <cmath>

#include "chem/mechanisms.hpp"
#include "chem/mixing.hpp"
#include "chem/species_db.hpp"
#include "chem/thermo.hpp"
#include "common/constants.hpp"

namespace chem = s3d::chem;
using s3d::constants::Ru;

namespace {
const chem::Mechanism& h2mech() {
  static const chem::Mechanism m = chem::h2_li2004();
  return m;
}
}  // namespace

TEST(Thermo, N2CpAt300KMatchesTabulated) {
  auto n2 = chem::species_from_db("N2");
  // cp(N2, 300 K) ~ 1040 J/(kg K).
  EXPECT_NEAR(chem::cp_mass(n2, 300.0), 1040.0, 15.0);
}

TEST(Thermo, H2OCpAt300KMatchesTabulated) {
  auto h2o = chem::species_from_db("H2O");
  // cp(H2O vapor, 300 K) ~ 1864 J/(kg K).
  EXPECT_NEAR(chem::cp_mass(h2o, 300.0), 1864.0, 40.0);
}

TEST(Thermo, O2EnthalpyOfFormationIsZero) {
  auto o2 = chem::species_from_db("O2");
  // h(298.15) = hf = 0 for elemental reference species.
  EXPECT_NEAR(chem::h_molar(o2, 298.15), 0.0, 1.5e5);
}

TEST(Thermo, H2OEnthalpyOfFormation) {
  auto h2o = chem::species_from_db("H2O");
  // hf(H2O, 298.15 K) = -241.83 MJ/kmol.
  EXPECT_NEAR(chem::h_molar(h2o, 298.15), -241.83e6, 0.5e6);
}

TEST(Thermo, CO2EnthalpyOfFormation) {
  auto co2 = chem::species_from_db("CO2");
  EXPECT_NEAR(chem::h_molar(co2, 298.15), -393.52e6, 0.5e6);
}

TEST(Thermo, HRadicalEnthalpyOfFormation) {
  auto h = chem::species_from_db("H");
  EXPECT_NEAR(chem::h_molar(h, 298.15), 217.99e6, 0.5e6);
}

TEST(Thermo, CpIsDerivativeOfH) {
  // dh/dT == cp for every species, both fit branches.
  for (const char* name : {"H2", "O2", "H2O", "OH", "CH4", "CO2", "N2"}) {
    auto sp = chem::species_from_db(name);
    for (double T : {400.0, 800.0, 1200.0, 2500.0}) {
      const double dT = 1e-3;
      const double dhdT =
          (chem::h_mass(sp, T + dT) - chem::h_mass(sp, T - dT)) / (2 * dT);
      EXPECT_NEAR(dhdT, chem::cp_mass(sp, T), 1e-4 * std::abs(chem::cp_mass(sp, T)))
          << name << " at T=" << T;
    }
  }
}

TEST(Thermo, FitBranchesAgreeAtTmid) {
  // The low and high NASA-7 fits must be continuous at T_mid.
  for (const char* name : {"H2", "O2", "H2O", "OH", "HO2", "H2O2", "CH4",
                           "CO", "CO2", "N2", "H", "O"}) {
    auto sp = chem::species_from_db(name);
    const double Tm = sp.T_mid;
    const double below = chem::cp_R(sp, Tm - 1e-7);
    const double above = chem::cp_R(sp, Tm + 1e-7);
    EXPECT_NEAR(below, above, 2e-3 * above) << name;
  }
}

TEST(Thermo, MixtureMeanMolecularWeightOfAir) {
  const auto& m = h2mech();
  std::vector<double> Y(m.n_species(), 0.0);
  Y[m.index("O2")] = 0.233;
  Y[m.index("N2")] = 0.767;
  EXPECT_NEAR(m.mean_W_from_Y(Y), 28.85, 0.05);
}

TEST(Thermo, XFromYRoundTrips) {
  const auto& m = h2mech();
  std::vector<double> Y(m.n_species(), 0.0);
  Y[m.index("H2")] = 0.1;
  Y[m.index("O2")] = 0.2;
  Y[m.index("H2O")] = 0.3;
  Y[m.index("N2")] = 0.4;
  std::vector<double> X(m.n_species()), Y2(m.n_species());
  m.X_from_Y(Y, X);
  m.Y_from_X(X, Y2);
  for (int i = 0; i < m.n_species(); ++i) EXPECT_NEAR(Y[i], Y2[i], 1e-14);
}

TEST(Thermo, MoleFractionsSumToOne) {
  const auto& m = h2mech();
  std::vector<double> Y(m.n_species(), 1.0 / m.n_species());
  std::vector<double> X(m.n_species());
  m.X_from_Y(Y, X);
  double s = 0.0;
  for (double x : X) s += x;
  EXPECT_NEAR(s, 1.0, 1e-13);
}

TEST(Thermo, CpMinusCvIsRuOverW) {
  // Paper section 2.1: cp - cv = Ru / W.
  const auto& m = h2mech();
  std::vector<double> Y(m.n_species(), 0.0);
  Y[m.index("H2")] = 0.05;
  Y[m.index("O2")] = 0.25;
  Y[m.index("N2")] = 0.70;
  for (double T : {300.0, 900.0, 1800.0}) {
    EXPECT_NEAR(m.cp_mass_mix(T, Y) - m.cv_mass_mix(T, Y),
                Ru / m.mean_W_from_Y(Y), 1e-8);
  }
}

TEST(Thermo, TFromEInvertsEMix) {
  const auto& m = h2mech();
  std::vector<double> Y(m.n_species(), 0.0);
  Y[m.index("H2")] = 0.02;
  Y[m.index("O2")] = 0.22;
  Y[m.index("H2O")] = 0.10;
  Y[m.index("N2")] = 0.66;
  for (double T : {350.0, 700.0, 1500.0, 2600.0}) {
    const double e = m.e_mass_mix(T, Y);
    EXPECT_NEAR(m.T_from_e(e, Y, 1000.0), T, 1e-6 * T);
  }
}

TEST(Thermo, TFromHInvertsHMix) {
  const auto& m = h2mech();
  std::vector<double> Y(m.n_species(), 0.0);
  Y[m.index("O2")] = 0.233;
  Y[m.index("N2")] = 0.767;
  for (double T : {400.0, 1100.0, 2200.0}) {
    const double h = m.h_mass_mix(T, Y);
    EXPECT_NEAR(m.T_from_h(h, Y, 300.0), T, 1e-6 * T);
  }
}

TEST(Thermo, IdealGasDensityOfAirAtSTP) {
  const auto& m = h2mech();
  std::vector<double> Y(m.n_species(), 0.0);
  Y[m.index("O2")] = 0.233;
  Y[m.index("N2")] = 0.767;
  const double rho = m.density(101325.0, 288.15, Y);
  EXPECT_NEAR(rho, 1.22, 0.02);
  // Round trip through the EOS.
  EXPECT_NEAR(m.pressure(rho, 288.15, Y), 101325.0, 1e-6 * 101325.0);
}

// ---- Mixing / mixture fraction ----

TEST(Mixing, StoichiometricH2AirMassFractions) {
  const auto& m = h2mech();
  auto Y = chem::premixed_fuel_air_Y(m, "H2", 1.0);
  // Stoichiometric H2/air: Y_H2 ~ 0.0285.
  EXPECT_NEAR(Y[m.index("H2")], 0.0285, 0.001);
  double s = 0.0;
  for (double y : Y) s += y;
  EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(Mixing, StoichiometricCH4AirMassFractions) {
  const auto m = chem::ch4_bfer2step();
  auto Y = chem::premixed_fuel_air_Y(m, "CH4", 1.0);
  // Stoichiometric CH4/air: Y_CH4 ~ 0.0552.
  EXPECT_NEAR(Y[m.index("CH4")], 0.0552, 0.001);
}

TEST(Mixing, BilgerZIsZeroInOxidizerOneInFuel) {
  const auto& m = h2mech();
  auto Y_ox = chem::stream_Y_from_X(m, {{"O2", 0.21}, {"N2", 0.79}});
  auto Y_fu = chem::stream_Y_from_X(m, {{"H2", 0.65}, {"N2", 0.35}});
  EXPECT_NEAR(chem::bilger_mixture_fraction(m, Y_ox, Y_ox, Y_fu), 0.0, 1e-12);
  EXPECT_NEAR(chem::bilger_mixture_fraction(m, Y_fu, Y_ox, Y_fu), 1.0, 1e-12);
}

TEST(Mixing, BilgerZIsLinearInStreamBlending) {
  const auto& m = h2mech();
  auto Y_ox = chem::stream_Y_from_X(m, {{"O2", 0.21}, {"N2", 0.79}});
  auto Y_fu = chem::stream_Y_from_X(m, {{"H2", 0.65}, {"N2", 0.35}});
  for (double f : {0.25, 0.5, 0.75}) {
    std::vector<double> Y(m.n_species());
    for (int i = 0; i < m.n_species(); ++i)
      Y[i] = (1 - f) * Y_ox[i] + f * Y_fu[i];
    EXPECT_NEAR(chem::bilger_mixture_fraction(m, Y, Y_ox, Y_fu), f, 1e-12);
  }
}

TEST(Mixing, BilgerZIsConservedUnderReaction) {
  // Mixture fraction is unchanged by chemistry: convert a stoichiometric
  // blend to products by hand and check Z.
  const auto& m = h2mech();
  auto Y_ox = chem::stream_Y_from_X(m, {{"O2", 0.21}, {"N2", 0.79}});
  auto Y_fu = chem::stream_Y_from_X(m, {{"H2", 1.0}});
  const double Zst = chem::stoichiometric_mixture_fraction(m, Y_ox, Y_fu);
  std::vector<double> Y(m.n_species());
  for (int i = 0; i < m.n_species(); ++i)
    Y[i] = (1 - Zst) * Y_ox[i] + Zst * Y_fu[i];
  // Complete combustion: all H2 + O2 -> H2O (element-conserving by
  // construction since 2 H2 + O2 -> 2 H2O).
  std::vector<double> Yb = Y;
  const double yh2 = Yb[m.index("H2")];
  const double w_h2o = yh2 / 2.016 * 18.015;
  Yb[m.index("H2")] = 0.0;
  Yb[m.index("O2")] -= yh2 / 2.016 * 0.5 * 31.998;
  Yb[m.index("H2O")] += w_h2o;
  EXPECT_NEAR(chem::bilger_mixture_fraction(m, Yb, Y_ox, Y_fu), Zst, 1e-6);
}

TEST(Mixing, StoichiometricZForH2N2JetMatchesLiterature) {
  // The paper's lifted-flame fuel stream: 65% H2, 35% N2 into air.
  const auto& m = h2mech();
  auto Y_ox = chem::stream_Y_from_X(m, {{"O2", 0.21}, {"N2", 0.79}});
  auto Y_fu = chem::stream_Y_from_X(m, {{"H2", 0.65}, {"N2", 0.35}});
  const double Zst = chem::stoichiometric_mixture_fraction(m, Y_ox, Y_fu);
  // Cabra-flame-like stream gives Zst in the ~0.2 range (fuel diluted).
  EXPECT_GT(Zst, 0.1);
  EXPECT_LT(Zst, 0.35);
}
