// Equivalence tier (ctest -L equivalence): the lnT-taking and
// row-batched mixture transport entries must reproduce the classic
// scalar rules bit for bit — they are thin stagers around the same
// compiled noinline rule bodies (DESIGN.md §11). Also pins the ctor
// change that removed the std::exp(std::log(T)) round-trip from the fit
// sampling (transport.cpp): the old and new sample abscissae agree to
// ~1 ulp of T, so the refitted coefficients stay interchangeable with
// the kinetic-theory values they fit.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "chem/mechanisms.hpp"
#include "transport/transport.hpp"

namespace chem = s3d::chem;
namespace transport = s3d::transport;

namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Random mole-fraction batches, cell-major, including one-hot and
/// near-zero compositions (the 0/0 corner of the mixture-diffusion
/// regularization).
struct Batch {
  int count = 0;
  std::vector<double> T, lnT, X;
};

Batch random_batch(int ns, int count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> uT(260.0, 3100.0);
  std::uniform_real_distribution<double> ux(0.0, 1.0);
  Batch b;
  b.count = count;
  b.T.resize(count);
  b.X.resize(static_cast<std::size_t>(count) * ns);
  for (int c = 0; c < count; ++c) {
    b.T[c] = uT(rng);
    double sum = 0.0;
    for (int s = 0; s < ns; ++s) {
      const double x = ux(rng);
      b.X[static_cast<std::size_t>(c) * ns + s] = x;
      sum += x;
    }
    for (int s = 0; s < ns; ++s)
      b.X[static_cast<std::size_t>(c) * ns + s] /= sum;
  }
  // Corner compositions: pure species 0 (the X_i -> 1 limit of paper
  // eq. 17), a trace mixture, and the fit-window temperature edges.
  if (count >= 3) {
    for (int s = 0; s < ns; ++s) {
      b.X[s] = (s == 0) ? 1.0 : 0.0;
      b.X[static_cast<std::size_t>(1) * ns + s] = (s == 0) ? 1.0 : 1e-14;
    }
    b.T[1] = 250.0;
    b.T[2] = 3200.0;
  }
  b.lnT.resize(count);
  for (int c = 0; c < count; ++c) b.lnT[c] = std::log(b.T[c]);
  return b;
}

}  // namespace

// The _lnT entries fed a caller-staged std::log(T) must equal the
// classic T-taking rules exactly: the T entries are now wrappers that
// derive lnT and forward, so anything else is a kernel-sharing bug.
TEST(TransportBatched, LnTEntriesMatchScalar) {
  const chem::Mechanism m = chem::h2_li2004();
  const transport::TransportFits fits(m);
  const int ns = m.n_species();
  const Batch b = random_batch(ns, 128, 11u);
  const double p = 101325.0;
  std::vector<double> D1(ns), D2(ns);
  for (int c = 0; c < b.count; ++c) {
    std::span<const double> X{b.X.data() + static_cast<std::size_t>(c) * ns,
                              static_cast<std::size_t>(ns)};
    const double lnT = std::log(b.T[c]);
    ASSERT_EQ(bits(fits.mixture_viscosity(b.T[c], X)),
              bits(fits.mixture_viscosity_lnT(lnT, X)))
        << "viscosity, cell " << c;
    ASSERT_EQ(bits(fits.mixture_conductivity(b.T[c], X)),
              bits(fits.mixture_conductivity_lnT(lnT, X)))
        << "conductivity, cell " << c;
    fits.mixture_diffusion(b.T[c], p, X, D1);
    fits.mixture_diffusion_lnT(lnT, p, X, D2);
    for (int s = 0; s < ns; ++s)
      ASSERT_EQ(bits(D1[s]), bits(D2[s]))
          << "diffusion, cell " << c << " species " << s;
  }
}

// The row-batched entries over cell-major X must equal per-cell scalar
// calls bit for bit, for every species count we ship.
TEST(TransportBatched, BatchEntriesMatchScalar) {
  for (const auto& m : {chem::h2_li2004(), chem::syngas_co_h2(),
                        chem::ch4_bfer2step()}) {
    const transport::TransportFits fits(m);
    const int ns = m.n_species();
    const Batch b = random_batch(ns, 97, 23u);
    const double p = 2.0 * 101325.0;

    std::vector<double> mu(b.count), lam(b.count),
        Dmix(static_cast<std::size_t>(b.count) * ns), Ds(ns);
    fits.mixture_props_batch(b.count, b.lnT.data(), b.X.data(), mu.data(),
                             lam.data());
    fits.mixture_diffusion_batch(b.count, b.lnT.data(), p, b.X.data(),
                                 Dmix.data());
    for (int c = 0; c < b.count; ++c) {
      std::span<const double> X{
          b.X.data() + static_cast<std::size_t>(c) * ns,
          static_cast<std::size_t>(ns)};
      ASSERT_EQ(bits(fits.mixture_viscosity(b.T[c], X)), bits(mu[c]))
          << m.name() << " viscosity, cell " << c;
      ASSERT_EQ(bits(fits.mixture_conductivity(b.T[c], X)), bits(lam[c]))
          << m.name() << " conductivity, cell " << c;
      fits.mixture_diffusion(b.T[c], p, X, Ds);
      for (int s = 0; s < ns; ++s)
        ASSERT_EQ(bits(Ds[s]),
                  bits(Dmix[static_cast<std::size_t>(c) * ns + s]))
            << m.name() << " diffusion, cell " << c << " species " << s;
    }
  }
}

// Pin of the removed fit-sampling round-trip: the old ctor evaluated the
// kinetic-theory properties at exp(log(T_s)) and the new one at T_s
// directly. exp and log are correctly-rounded-ish but not exact
// inverses, so the abscissae may differ — by at most a couple of ulps of
// T. This test bounds the perturbation at every sample point and checks
// the property values agree to ~1e-12 relative, which is far inside the
// fit residual: the old and new coefficients are interchangeable.
TEST(TransportBatched, FitSamplingRoundTripRemovalIsNegligible) {
  const chem::Mechanism m = chem::h2_li2004();
  const double T_lo = 250.0, T_hi = 3200.0;
  const int kSamples = 24;  // matches the ctor's sampling density scale
  for (int s = 0; s < m.n_species(); ++s) {
    const auto& sp = m.species(s);
    for (int k = 0; k < kSamples; ++k) {
      const double lnT = std::log(T_lo) +
                         (std::log(T_hi) - std::log(T_lo)) * k /
                             (kSamples - 1);
      const double T_new = std::exp(lnT);            // sample abscissa
      const double T_old = std::exp(std::log(T_new));  // old round-trip
      EXPECT_NEAR(T_old, T_new, 4.0 * T_new * 1e-16)
          << "abscissa perturbation beyond a few ulps";
      const double v_new = transport::viscosity(sp, T_new);
      const double v_old = transport::viscosity(sp, T_old);
      EXPECT_NEAR(v_old, v_new, 1e-12 * v_new);
      const double c_new = transport::conductivity(sp, T_new);
      const double c_old = transport::conductivity(sp, T_old);
      EXPECT_NEAR(c_old, c_new, 1e-12 * c_new);
    }
  }
}

// The refitted coefficients must still track kinetic theory: fitted
// pure-species curves within a few percent of the direct Chapman-Enskog
// evaluation across the fit window (same bar test_transport holds the
// original fits to).
TEST(TransportBatched, RefitStillTracksKineticTheory) {
  const chem::Mechanism m = chem::syngas_co_h2();
  const transport::TransportFits fits(m);
  for (int s = 0; s < m.n_species(); ++s) {
    const auto& sp = m.species(s);
    for (double T : {300.0, 600.0, 1200.0, 2400.0, 3000.0}) {
      const double lnT = std::log(T);
      EXPECT_NEAR(fits.viscosity(s, lnT), transport::viscosity(sp, T),
                  0.03 * transport::viscosity(sp, T))
          << sp.name << " @ " << T;
      EXPECT_NEAR(fits.conductivity(s, lnT), transport::conductivity(sp, T),
                  0.03 * transport::conductivity(sp, T))
          << sp.name << " @ " << T;
    }
  }
}
