// Parameterized property sweeps across the library:
//   - thermodynamic identities for every database species x temperature,
//   - kinetics invariants for every mechanism x temperature,
//   - derivative/filter spectral properties across wavenumbers,
//   - RK order across schemes,
//   - I/O writer correctness across methods x process grids,
//   - transport positivity across states.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "chem/mechanisms.hpp"
#include "chem/mixing.hpp"
#include "chem/species_db.hpp"
#include "chem/thermo.hpp"
#include "common/constants.hpp"
#include "iosim/simfs.hpp"
#include "iosim/writers.hpp"
#include "numerics/rk.hpp"
#include "numerics/stencil.hpp"
#include "transport/transport.hpp"

namespace chem = s3d::chem;
namespace num = s3d::numerics;
namespace tr = s3d::transport;
namespace io = s3d::iosim;
using std::numbers::pi;

// ---------- thermo identities per (species, T) ----------

class SpeciesThermoP
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(SpeciesThermoP, GibbsIdentity) {
  auto sp = chem::species_from_db(std::get<0>(GetParam()));
  const double T = std::get<1>(GetParam());
  EXPECT_NEAR(chem::g_RT(sp, T), chem::h_RT(sp, T) - chem::s_R(sp, T),
              1e-12 * std::abs(chem::h_RT(sp, T)) + 1e-12);
}

TEST_P(SpeciesThermoP, CpPositive) {
  auto sp = chem::species_from_db(std::get<0>(GetParam()));
  const double T = std::get<1>(GetParam());
  EXPECT_GT(chem::cp_R(sp, T), 0.0);
}

TEST_P(SpeciesThermoP, EnthalpyMonotoneInT) {
  // h(T + dT) > h(T): cv > 0 equivalent, including outside the fit range
  // where the C1 extension must keep it monotone (the bug class that broke
  // the compressible solver).
  auto sp = chem::species_from_db(std::get<0>(GetParam()));
  const double T = std::get<1>(GetParam());
  EXPECT_GT(chem::h_mass(sp, T + 1.0), chem::h_mass(sp, T));
  // Internal energy too: e = h - RT must also increase.
  EXPECT_GT(chem::e_mass(sp, T + 1.0), chem::e_mass(sp, T));
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecies, SpeciesThermoP,
    ::testing::Combine(::testing::Values("H2", "H", "O", "O2", "OH", "H2O",
                                         "HO2", "H2O2", "N2", "CH4", "CO",
                                         "CO2", "AR"),
                       ::testing::Values(120.0, 290.0, 301.0, 999.0, 1001.0,
                                         2400.0, 4500.0)));

// ---------- kinetics invariants per (mechanism, T) ----------

namespace {
const chem::Mechanism& mech_by_name(const std::string& name) {
  static const chem::Mechanism h2 = chem::h2_li2004();
  static const chem::Mechanism ch4 = chem::ch4_bfer2step();
  static const chem::Mechanism one = chem::ch4_onestep();
  if (name == "h2") return h2;
  if (name == "ch4_2step") return ch4;
  return one;
}
}  // namespace

class MechKineticsP
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(MechKineticsP, MassConservedByChemistry) {
  const auto& m = mech_by_name(std::get<0>(GetParam()));
  const double T = std::get<1>(GetParam());
  std::vector<double> c(m.n_species()), wdot(m.n_species());
  for (int i = 0; i < m.n_species(); ++i) c[i] = 2e-3 / (i + 1);
  m.production_rates(T, c, wdot);
  double mdot = 0.0, scale = 1e-30;
  for (int i = 0; i < m.n_species(); ++i) {
    mdot += wdot[i] * m.W(i);
    scale += std::abs(wdot[i]) * m.W(i);
  }
  EXPECT_LE(std::abs(mdot), 1e-10 * scale);
}

TEST_P(MechKineticsP, ElementsConservedByChemistry) {
  const auto& m = mech_by_name(std::get<0>(GetParam()));
  const double T = std::get<1>(GetParam());
  std::vector<double> c(m.n_species()), wdot(m.n_species());
  for (int i = 0; i < m.n_species(); ++i) c[i] = 1e-3 * (1 + (i % 3));
  m.production_rates(T, c, wdot);
  double el[4] = {0, 0, 0, 0};
  double scale = 1e-30;
  for (int i = 0; i < m.n_species(); ++i) {
    const auto& e = m.species(i).elements;
    el[0] += wdot[i] * e.C;
    el[1] += wdot[i] * e.H;
    el[2] += wdot[i] * e.O;
    el[3] += wdot[i] * e.N;
    scale += std::abs(wdot[i]);
  }
  for (int k = 0; k < 4; ++k) EXPECT_LE(std::abs(el[k]), 1e-9 * scale) << k;
}

TEST_P(MechKineticsP, RatesFiniteAndZeroWithoutReactants) {
  const auto& m = mech_by_name(std::get<0>(GetParam()));
  const double T = std::get<1>(GetParam());
  std::vector<double> c(m.n_species(), 0.0), wdot(m.n_species());
  m.production_rates(T, c, wdot);
  for (int i = 0; i < m.n_species(); ++i) {
    EXPECT_TRUE(std::isfinite(wdot[i]));
    EXPECT_DOUBLE_EQ(wdot[i], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMechs, MechKineticsP,
    ::testing::Combine(::testing::Values("h2", "ch4_2step", "ch4_1step"),
                       ::testing::Values(400.0, 900.0, 1600.0, 2800.0)));

// ---------- derivative exactness across wavenumbers ----------

class DerivSpectralP : public ::testing::TestWithParam<int> {};

TEST_P(DerivSpectralP, ResolvedModesDifferentiatedAccurately) {
  const int k = GetParam();
  const int n = 64;
  const double L = 2 * pi;
  std::vector<double> buf(n + 2 * num::kGhost);
  double* f = buf.data() + num::kGhost;
  for (int i = -num::kGhost; i < n + num::kGhost; ++i)
    f[i] = std::sin(k * (i * L / n));
  std::vector<double> df(n);
  num::deriv_line(f, 1, df.data(), 1, n, n / L, {true, true});
  // Modified wavenumber of the 8th-order stencil: relative error bounded
  // by (theta/pi)^8-ish; for k <= 8 on 64 points it is tiny.
  double err = 0.0;
  for (int i = 0; i < n; ++i)
    err = std::max(err, std::abs(df[i] - k * std::cos(k * (i * L / n))));
  const double theta = 2 * pi * k / n;
  EXPECT_LT(err / k, 0.02 * std::pow(theta, 8) + 1e-10) << "k=" << k;
}

TEST_P(DerivSpectralP, FilterTransferMatchesTheory) {
  const int k = GetParam();
  const int n = 64;
  std::vector<double> buf(n + 2 * num::kGhostFilter);
  double* f = buf.data() + num::kGhostFilter;
  for (int i = -num::kGhostFilter; i < n + num::kGhostFilter; ++i)
    f[i] = std::cos(2 * pi * k * i / n);
  std::vector<double> out(n);
  num::filter_line(f, 1, out.data(), 1, n, 0.8, {true, true});
  const double expected = num::filter_transfer(2 * pi * k / n, 0.8);
  EXPECT_NEAR(out[0], expected, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Wavenumbers, DerivSpectralP,
                         ::testing::Values(1, 2, 4, 6, 8, 12, 16, 24, 31));

// ---------- RK order per scheme ----------

class RkOrderP
    : public ::testing::TestWithParam<std::pair<const num::RkScheme*, int>> {};

TEST_P(RkOrderP, ConvergesAtDesignOrder) {
  const auto& [scheme, order] = GetParam();
  auto err = [&](int steps) {
    num::LowStorageRk rk(*scheme);
    std::vector<double> u{1.0, 0.0};
    const double dt = 1.0 / steps;
    for (int s = 0; s < steps; ++s)
      rk.step(u, s * dt, dt,
              [](std::span<const double> x, double, std::span<double> dx) {
                dx[0] = -x[1];  // harmonic oscillator
                dx[1] = x[0];
              });
    return std::hypot(u[0] - std::cos(1.0), u[1] - std::sin(1.0));
  };
  const double rate = std::log2(err(20) / err(40));
  EXPECT_GT(rate, order - 0.5);
  EXPECT_LT(rate, order + 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, RkOrderP,
    ::testing::Values(std::pair{&num::rk_carpenter_kennedy4(), 4},
                      std::pair{&num::rk_williamson3(), 3},
                      std::pair{&num::rk_euler(), 1}));

// ---------- I/O writers: correctness across methods and grids ----------

struct WriterCase {
  const char* name;
  io::WriteResult (*fn)(io::SimFS&, const io::CheckpointSpec&,
                        const io::NetParams&, int, double);
  int px, py, pz;
};

class WritersP : public ::testing::TestWithParam<WriterCase> {};

TEST_P(WritersP, SharedFileImageIsCanonical) {
  const auto& wc = GetParam();
  io::FsParams p;
  p.n_servers = 3;
  p.stripe_size = 768;  // deliberately awkward vs the 8-byte rows
  p.store_data = true;
  io::SimFS fs(p);
  io::CheckpointSpec spec;
  spec.nx = 3;
  spec.ny = 4;
  spec.nz = 2;
  spec.px = wc.px;
  spec.py = wc.py;
  spec.pz = wc.pz;
  wc.fn(fs, spec, {}, 0, 0.0);
  const auto& data = fs.file_data("ckpt0.field");
  ASSERT_EQ(data.size(), spec.total_bytes());
  for (std::size_t b = 0; b < data.size(); ++b)
    ASSERT_EQ(data[b], io::expected_byte(b)) << "byte " << b;
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndGrids, WritersP,
    ::testing::Values(
        WriterCase{"collective_221", io::write_native_collective, 2, 2, 1},
        WriterCase{"collective_313", io::write_native_collective, 3, 1, 3},
        WriterCase{"caching_221", io::write_mpiio_caching, 2, 2, 1},
        WriterCase{"caching_313", io::write_mpiio_caching, 3, 1, 3},
        WriterCase{"caching_114", io::write_mpiio_caching, 1, 1, 4},
        WriterCase{"wbehind_221", io::write_write_behind, 2, 2, 1},
        WriterCase{"wbehind_313", io::write_write_behind, 3, 1, 3},
        WriterCase{"wbehind_141", io::write_write_behind, 1, 4, 1}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------- transport positivity across states ----------

class TransportStateP
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TransportStateP, MixturePropertiesPositiveAndFinite) {
  static const chem::Mechanism m = chem::h2_li2004();
  static const tr::TransportFits fits(m);
  const double T = std::get<0>(GetParam());
  const double p = std::get<1>(GetParam());
  // A deliberately lopsided composition.
  std::vector<double> X(m.n_species(), 0.01);
  X[m.index("N2")] = 1.0 - 0.01 * (m.n_species() - 1);
  const double mu = fits.mixture_viscosity(T, X);
  const double lam = fits.mixture_conductivity(T, X);
  EXPECT_GT(mu, 1e-6);
  EXPECT_LT(mu, 3e-4);
  EXPECT_GT(lam, 1e-3);
  EXPECT_LT(lam, 5.0);
  std::vector<double> D(m.n_species());
  fits.mixture_diffusion(T, p, X, D);
  for (double d : D) {
    EXPECT_GT(d, 0.0);
    EXPECT_TRUE(std::isfinite(d));
  }
}

INSTANTIATE_TEST_SUITE_P(
    States, TransportStateP,
    ::testing::Combine(::testing::Values(300.0, 800.0, 1500.0, 2800.0),
                       ::testing::Values(0.5e5, 1.01325e5, 10e5)));

// ---------- premixed mixtures across phi ----------

class PhiP : public ::testing::TestWithParam<double> {};

TEST_P(PhiP, PremixedCompositionNormalizedAndLean) {
  static const chem::Mechanism m = chem::h2_li2004();
  const double phi = GetParam();
  auto Y = chem::premixed_fuel_air_Y(m, "H2", phi);
  double sum = 0.0;
  for (double y : Y) sum += y;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Fuel mass fraction increases monotonically with phi.
  auto Y2 = chem::premixed_fuel_air_Y(m, "H2", phi + 0.1);
  EXPECT_GT(Y2[m.index("H2")], Y[m.index("H2")]);
}

INSTANTIATE_TEST_SUITE_P(Phis, PhiP,
                         ::testing::Values(0.4, 0.7, 1.0, 1.3, 2.0));
