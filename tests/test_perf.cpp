// Performance-module tests: the LoopTool kernel pair computes identical
// results, and the cluster model reproduces the paper's structural facts.

#include <gtest/gtest.h>

#include <cmath>

#include "perf/kernels.hpp"
#include "perf/model.hpp"

namespace perf = s3d::perf;

namespace {
std::vector<perf::KernelShare> sample_kernels() {
  // A plausible decomposition: stencils and diffusive flux stream memory,
  // chemistry is compute-bound.
  // Effective bandwidth sensitivities calibrated so the step-level
  // memory-bound fraction is ~0.36, matching the paper's observed 24%
  // XT3/XT4 gap (caches absorb much of a stencil kernel's traffic).
  return {{"GET_VELOCITY", 0.05, 0.5},
          {"REACTION_RATE", 0.30, 0.05},
          {"COMPUTESPECIESDIFFFLUX", 0.25, 0.5},
          {"DERIVATIVES", 0.25, 0.55},
          {"COMPUTEHEATFLUX", 0.15, 0.5}};
}
}  // namespace

TEST(Kernels, NaiveAndOptimizedAgree) {
  for (bool baro : {false, true}) {
    for (bool therm : {false, true}) {
      perf::DiffFluxArrays a, b;
      a.init(24, 9);
      b.init(24, 9);
      perf::DiffFluxSwitches sw{baro, therm};
      perf::run_naive(a, sw);
      perf::run_optimized(b, sw);
      const double ca = perf::checksum(a), cb = perf::checksum(b);
      EXPECT_NEAR(ca, cb, 1e-9 * std::abs(ca))
          << "baro=" << baro << " therm=" << therm;
    }
  }
}

TEST(Kernels, LastSpeciesBalancesFluxSum) {
  perf::DiffFluxArrays a;
  a.init(16, 7);
  perf::run_optimized(a, {true, true});
  const std::size_t np = a.pts();
  for (int m = 0; m < 3; ++m) {
    for (std::size_t i = 0; i < np; i += 97) {
      double sum = 0.0;
      for (int n = 0; n < a.nsp; ++n) sum += a.diffFlux[m][np * n + i];
      EXPECT_NEAR(sum, 0.0, 1e-12);
    }
  }
}

TEST(Kernels, OddSpeciesCountHandledByPeel) {
  perf::DiffFluxArrays a, b;
  a.init(12, 8);  // nsp-1 = 7, odd: exercises the peeled remainder
  b.init(12, 8);
  perf::run_naive(a, {});
  perf::run_optimized(b, {});
  EXPECT_NEAR(perf::checksum(a), perf::checksum(b),
              1e-9 * std::abs(perf::checksum(a)));
}

TEST(Model, AnchorCostReproduced) {
  perf::ClusterModel m(sample_kernels(), 55e-6);
  EXPECT_NEAR(m.cost(perf::xt4()), 55e-6, 1e-12);
}

TEST(Model, Xt3SlowerByMemoryBandwidthShare) {
  perf::ClusterModel m(sample_kernels(), 55e-6);
  const double c3 = m.cost(perf::xt3());
  const double c4 = m.cost(perf::xt4());
  EXPECT_GT(c3, c4);
  // Upper bound: even a fully memory-bound code only slows by the
  // bandwidth ratio 10.6/6.4.
  EXPECT_LT(c3 / c4, 10.6 / 6.4 + 1e-12);
  // With this decomposition the ratio lands near the paper's 68/55.
  EXPECT_NEAR(c3 / c4, 68.0 / 55.0, 0.25);
}

TEST(Model, HybridRunsAtSlowClassPace) {
  perf::ClusterModel m(sample_kernels(), 55e-6);
  EXPECT_DOUBLE_EQ(m.hybrid_cost(0.5), m.cost(perf::xt3()));
  EXPECT_DOUBLE_EQ(m.hybrid_cost(1.0), m.cost(perf::xt4()));
  EXPECT_DOUBLE_EQ(m.hybrid_cost(0.0), m.cost(perf::xt3()));
}

TEST(Model, BalancedCostInterpolatesFig3) {
  perf::ClusterModel m(sample_kernels(), 55e-6);
  const double at1 = m.balanced_cost(1.0);
  const double at0 = m.balanced_cost(0.0);
  EXPECT_NEAR(at1, 55e-6, 1e-12);
  // All-XT3 with 0.8x blocks: average cost = c4 / 0.8.
  EXPECT_NEAR(at0, 55e-6 / 0.8, 1e-12);
  // Monotone decreasing in the XT4 fraction.
  double prev = at0;
  for (double p = 0.1; p <= 1.0; p += 0.1) {
    const double c = m.balanced_cost(p);
    EXPECT_LT(c, prev + 1e-15);
    prev = c;
  }
  // Paper: 46% XT4 predicts ~61 us.
  EXPECT_NEAR(m.balanced_cost(0.46) * 1e6, 61.0, 2.0);
}

TEST(Model, KernelBreakdownShowsWaitOnFastNodes) {
  perf::ClusterModel m(sample_kernels(), 55e-6);
  auto bd4 = m.kernel_breakdown(perf::xt4(), 125000, true);
  auto bd3 = m.kernel_breakdown(perf::xt3(), 125000, true);
  // Both have the MPI_WAIT entry appended.
  ASSERT_EQ(bd4.back().name, "MPI_WAIT");
  ASSERT_EQ(bd3.back().name, "MPI_WAIT");
  // XT4 ranks wait; XT3 ranks do not (paper fig. 2's two classes).
  EXPECT_GT(bd4.back().seconds, 0.0);
  EXPECT_NEAR(bd3.back().seconds, 0.0, 1e-15);
  // CPU-bound kernels take (nearly) identical time on both classes; the
  // memory-bound diffusive flux is noticeably slower on XT3.
  auto find = [](const std::vector<perf::ClusterModel::KernelTime>& v,
                 const std::string& n) {
    for (const auto& k : v)
      if (k.name == n) return k.seconds;
    return -1.0;
  };
  EXPECT_NEAR(find(bd3, "REACTION_RATE") / find(bd4, "REACTION_RATE"), 1.0,
              0.1);
  EXPECT_GT(find(bd3, "COMPUTESPECIESDIFFFLUX") /
                find(bd4, "COMPUTESPECIESDIFFFLUX"),
            1.3);
}
