// Tests for synthetic turbulence, diagnostics, and the packaged case
// setups (short smoke runs of the 2-D configurations).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "chem/mechanisms.hpp"
#include "chem/mixing.hpp"
#include "solver/cases.hpp"
#include "solver/diagnostics.hpp"
#include "solver/solver.hpp"
#include "solver/turbulence.hpp"

namespace sv = s3d::solver;
namespace chem = s3d::chem;
using std::numbers::pi;

TEST(Turbulence, RmsMatchesTarget) {
  sv::SyntheticTurbulence turb(3.0, 0.001, 96, 42, false);
  // Sample the frozen field; mean component variance should be ~u_rms^2.
  double sum2 = 0.0;
  int n = 0;
  s3d::Rng rng(7);
  for (int s = 0; s < 4000; ++s) {
    const auto u = turb.velocity(rng.uniform(0, 0.01), rng.uniform(0, 0.01),
                                 rng.uniform(0, 0.01));
    sum2 += u[0] * u[0] + u[1] * u[1] + u[2] * u[2];
    n += 3;
  }
  const double rms = std::sqrt(sum2 / n);
  EXPECT_NEAR(rms, 3.0, 0.45);
}

TEST(Turbulence, FieldIsDivergenceFree) {
  sv::SyntheticTurbulence turb(2.0, 0.002, 64, 5, false);
  const double eps = 1e-7;
  s3d::Rng rng(11);
  for (int s = 0; s < 50; ++s) {
    const double x = rng.uniform(0, 0.01), y = rng.uniform(0, 0.01),
                 z = rng.uniform(0, 0.01);
    const double dudx = (turb.velocity(x + eps, y, z)[0] -
                         turb.velocity(x - eps, y, z)[0]) / (2 * eps);
    const double dvdy = (turb.velocity(x, y + eps, z)[1] -
                         turb.velocity(x, y - eps, z)[1]) / (2 * eps);
    const double dwdz = (turb.velocity(x, y, z + eps)[2] -
                         turb.velocity(x, y, z - eps)[2]) / (2 * eps);
    const double div = dudx + dvdy + dwdz;
    // Scale: velocity gradient magnitude ~ u_rms / length.
    EXPECT_LT(std::abs(div), 1e-3 * (2.0 / 0.002));
  }
}

TEST(Turbulence, TwoDModeHasNoZComponent) {
  sv::SyntheticTurbulence turb(2.0, 0.001, 48, 3, true);
  for (double x : {0.0, 0.003, 0.007}) {
    const auto u = turb.velocity(x, 0.002, 0.0);
    EXPECT_DOUBLE_EQ(u[2], 0.0);
  }
}

TEST(Turbulence, DeterministicForFixedSeed) {
  sv::SyntheticTurbulence a(1.0, 0.001, 32, 99, false);
  sv::SyntheticTurbulence b(1.0, 0.001, 32, 99, false);
  const auto ua = a.velocity(0.001, 0.002, 0.003);
  const auto ub = b.velocity(0.001, 0.002, 0.003);
  EXPECT_DOUBLE_EQ(ua[0], ub[0]);
  EXPECT_DOUBLE_EQ(ua[1], ub[1]);
}

TEST(Turbulence, TaylorSweepMatchesFrozenField) {
  sv::SyntheticTurbulence turb(1.5, 0.001, 32, 12, true);
  const double Uc = 50.0, t = 1.3e-5;
  const auto a = turb.at_inflow(t, Uc, 0.002, 0.0);
  const auto b = turb.velocity(-Uc * t, 0.002, 0.0);
  EXPECT_DOUBLE_EQ(a[0], b[0]);
  EXPECT_DOUBLE_EQ(a[1], b[1]);
}

TEST(ConditionalStats, MeanAndStdOfKnownDistribution) {
  sv::ConditionalStats cs(0.0, 1.0, 10);
  // In bin 3 (cond ~ 0.35): values 1, 2, 3.
  cs.add(0.35, 1.0);
  cs.add(0.32, 2.0);
  cs.add(0.38, 3.0);
  EXPECT_EQ(cs.count(3), 3);
  EXPECT_NEAR(cs.mean(3), 2.0, 1e-12);
  EXPECT_NEAR(cs.stddev(3), std::sqrt(2.0 / 3.0), 1e-12);
  EXPECT_EQ(cs.count(7), 0);
}

TEST(ConditionalStats, OutOfRangeIgnoredAndMergeWorks) {
  sv::ConditionalStats a(0.0, 1.0, 4), b(0.0, 1.0, 4);
  a.add(-0.1, 5.0);
  a.add(1.1, 5.0);
  a.add(0.1, 2.0);
  b.add(0.15, 4.0);
  a.merge(b);
  EXPECT_EQ(a.count(0), 2);
  EXPECT_NEAR(a.mean(0), 3.0, 1e-12);
}

TEST(Diagnostics, ContourLengthOfCircle) {
  // f = r - R on a fine grid: contour length ~ 2 pi R.
  sv::Layout l = sv::Layout::make(101, 101, 1);
  s3d::grid::Mesh mesh({101, 1.0, false}, {101, 1.0, false}, {1, 1.0, false});
  sv::GField f(l);
  const double R = 0.3;
  for (int j = 0; j < 101; ++j)
    for (int i = 0; i < 101; ++i) {
      const double x = i / 100.0 - 0.5, y = j / 100.0 - 0.5;
      f(i, j, 0) = std::hypot(x, y) - R;
    }
  const double len = sv::contour_length_2d(f, l, mesh, {0, 0, 0}, 0.0);
  EXPECT_NEAR(len, 2 * pi * R, 0.02 * 2 * pi * R);
}

TEST(Diagnostics, ContourLengthOfStraightLine) {
  sv::Layout l = sv::Layout::make(64, 32, 1);
  s3d::grid::Mesh mesh({64, 2.0, false}, {32, 1.0, false}, {1, 1.0, false});
  sv::GField f(l);
  for (int j = 0; j < 32; ++j)
    for (int i = 0; i < 64; ++i)
      f(i, j, 0) = mesh.coord(1, j) - 0.47;  // horizontal line y = 0.47
  const double len = sv::contour_length_2d(f, l, mesh, {0, 0, 0}, 0.0);
  EXPECT_NEAR(len, 2.0, 0.02);
}

TEST(Diagnostics, IntegralLengthScaleOfSineIsPositive) {
  sv::Layout l = sv::Layout::make(128, 1, 1);
  s3d::grid::Mesh mesh({128, 1.0, true}, {1, 1.0, false}, {1, 1.0, false});
  sv::GField f(l);
  const double lam = 0.25;  // wavelength
  for (int i = 0; i < 128; ++i)
    f(i, 0, 0) = std::sin(2 * pi * mesh.coord(0, i) / lam);
  const double L = sv::integral_length_scale(f, l, mesh, {0, 0, 0}, 0, 0, 0, 0);
  // Autocorrelation of a sine integrates to ~lam/(2 pi) up to first zero.
  EXPECT_GT(L, 0.2 * lam / (2 * pi));
  EXPECT_LT(L, 3.0 * lam / (2 * pi));
}

TEST(Diagnostics, MixtureFractionFieldMatchesPointwiseBilger) {
  auto mech = chem::h2_li2004();
  sv::Layout l = sv::Layout::make(8, 4, 1);
  sv::Prim prim;
  prim.allocate(l, mech.n_species());
  auto Y_ox = chem::stream_Y_from_X(mech, {{"O2", 0.21}, {"N2", 0.79}});
  auto Y_fu = chem::stream_Y_from_X(mech, {{"H2", 0.65}, {"N2", 0.35}});
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 8; ++i) {
      const double z = (i + 1) / 10.0;
      for (int s = 0; s < mech.n_species(); ++s)
        prim.Y[s](i, j, 0) = (1 - z) * Y_ox[s] + z * Y_fu[s];
    }
  auto Z = sv::mixture_fraction_field(mech, prim, l, Y_ox, Y_fu);
  for (int i = 0; i < 8; ++i) EXPECT_NEAR(Z(i, 2, 0), (i + 1) / 10.0, 1e-12);
}

TEST(Diagnostics, ProgressVariableEndpoints) {
  auto mech = chem::ch4_bfer2step();
  sv::Layout l = sv::Layout::make(4, 1, 1);
  sv::Prim prim;
  prim.allocate(l, mech.n_species());
  const int io2 = mech.index("O2");
  prim.Y[io2](0, 0, 0) = 0.20;   // unburnt
  prim.Y[io2](1, 0, 0) = 0.05;   // burnt
  prim.Y[io2](2, 0, 0) = 0.125;  // halfway
  prim.Y[io2](3, 0, 0) = 0.30;   // beyond unburnt: clipped
  auto c = sv::progress_variable_field(mech, prim, l, 0.20, 0.05);
  EXPECT_NEAR(c(0, 0, 0), 0.0, 1e-12);
  EXPECT_NEAR(c(1, 0, 0), 1.0, 1e-12);
  EXPECT_NEAR(c(2, 0, 0), 0.5, 1e-12);
  EXPECT_NEAR(c(3, 0, 0), 0.0, 1e-12);
}

// ---- Case smoke tests (tiny, short) ----

TEST(Cases, PressureWaveRunsAndStaysFinite) {
  auto cs = sv::pressure_wave_case(24, true);
  sv::Solver s(cs.cfg);
  s.initialize(cs.init);
  s.run(10);
  const auto& prim = s.primitives();
  for (int j = 0; j < 24; ++j)
    for (int i = 0; i < 24; ++i) {
      EXPECT_TRUE(std::isfinite(prim.p(i, j, 0)));
      EXPECT_NEAR(prim.p(i, j, 0), 101325.0, 2500.0);
    }
}

TEST(Cases, LiftedJetShortRunProducesMixing) {
  sv::LiftedJetParams prm;
  prm.nx = 72;
  prm.ny = 64;
  prm.Lx = 0.006;
  prm.Ly = 0.006;
  prm.u_jet = 80.0;
  prm.u_rms = 8.0;
  auto cs = sv::lifted_jet_case(prm);
  sv::Solver s(cs.cfg);
  s.initialize(cs.init);
  s.run(25);
  const auto& prim = s.primitives();
  auto Z = sv::mixture_fraction_field(*cs.cfg.mech, prim, s.layout(),
                                      cs.Y_ox, cs.Y_fuel);
  // Jet core near Z=1, coflow near Z=0, everything finite.
  double zmax = 0.0, zmin = 1.0;
  for (int j = 0; j < prm.ny; ++j)
    for (int i = 0; i < prm.nx; ++i) {
      EXPECT_TRUE(std::isfinite(prim.T(i, j, 0))) << i << "," << j;
      zmax = std::max(zmax, Z(i, j, 0));
      zmin = std::min(zmin, Z(i, j, 0));
    }
  EXPECT_GT(zmax, 0.8);
  EXPECT_LT(zmin, 0.1);
}

TEST(Cases, BunsenShortRunHasFlameBrush) {
  sv::BunsenParams prm;
  prm.nx = 64;
  prm.ny = 56;
  prm.Lx = 0.006;
  prm.Ly = 0.005;
  prm.u_jet = 40.0;
  prm.u_rms = 2.0;
  auto cs = sv::bunsen_case(prm);
  sv::Solver s(cs.cfg);
  s.initialize(cs.init);
  s.run(25);
  const auto& prim = s.primitives();
  auto c = sv::progress_variable_field(*cs.cfg.mech, prim, s.layout(),
                                       cs.Y_o2_unburnt, cs.Y_o2_burnt);
  // Both unburnt and burnt fluid present; flame surface has finite length.
  double cmin = 1.0, cmax = 0.0;
  for (int j = 0; j < prm.ny; ++j)
    for (int i = 0; i < prm.nx; ++i) {
      EXPECT_TRUE(std::isfinite(prim.T(i, j, 0)));
      cmin = std::min(cmin, c(i, j, 0));
      cmax = std::max(cmax, c(i, j, 0));
    }
  EXPECT_LT(cmin, 0.05);
  EXPECT_GT(cmax, 0.95);
  const double len = sv::contour_length_2d(c, s.layout(), s.mesh(),
                                           s.offset(), 0.65);
  EXPECT_GT(len, 0.5 * prm.slot_h);
}

TEST(Soret, LightSpeciesDriftTowardHotRegions) {
  // A quiescent H2/air slab with a temperature gradient and Soret ON: the
  // H2 flux acquires a component toward the hot side (theta_H2 < 0), so
  // after a short time Y_H2 increases where it is hot relative to the
  // Soret-OFF run.
  auto mech = std::make_shared<const chem::Mechanism>(chem::h2_li2004());
  auto run = [&](bool soret) {
    sv::Config cfg;
    cfg.mech = mech;
    cfg.x = {96, 0.004, false};
    cfg.y = {1, 1.0, false};
    cfg.z = {1, 1.0, false};
    cfg.faces[0][0] = {sv::BcKind::nscbc_outflow, 101325.0, 0.25};
    cfg.faces[0][1] = {sv::BcKind::nscbc_outflow, 101325.0, 0.25};
    cfg.transport = sv::TransportModel::constant_lewis;
    cfg.include_chemistry = false;  // isolate transport
    cfg.include_soret = soret;
    sv::Solver s(cfg);
    s.initialize([&](double x, double, double, sv::InflowState& st,
                     double& p) {
      st.u = st.v = st.w = 0.0;
      st.T = 500.0 + 400.0 * std::tanh((x - 0.002) / 4e-4);  // hot right
      st.Y.fill(0.0);
      st.Y[mech->index("H2")] = 0.02;
      st.Y[mech->index("N2")] = 0.98;
      p = 101325.0;
    });
    while (s.time() < 1.2e-5) s.step(0.7 * s.stable_dt());
    // Y_H2 at a point on the hot side of the gradient.
    return s.primitives().Y[mech->index("H2")](70, 0, 0);
  };
  const double y_off = run(false);
  const double y_on = run(true);
  EXPECT_GT(y_on, y_off + 1e-7);  // H2 enriched on the hot side with Soret
}
