// Grid and vmpi runtime tests: mesh construction, stretching metrics,
// block decomposition, and message-passing semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>

#include "grid/mesh.hpp"
#include "vmpi/vmpi.hpp"

namespace grid = s3d::grid;
namespace vmpi = s3d::vmpi;

TEST(Mesh, UniformBoundedAxisSpacing) {
  grid::Mesh m({11, 1.0, false}, {1, 1.0, false}, {1, 1.0, false});
  EXPECT_DOUBLE_EQ(m.coord(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.coord(0, 10), 1.0);
  EXPECT_NEAR(m.min_spacing(0), 0.1, 1e-14);
  EXPECT_NEAR(m.inv_spacing(0)[5], 10.0, 1e-12);
}

TEST(Mesh, UniformPeriodicAxisExcludesEndpoint) {
  grid::Mesh m({10, 1.0, true}, {1, 1.0, false}, {1, 1.0, false});
  EXPECT_DOUBLE_EQ(m.coord(0, 9), 0.9);
  EXPECT_NEAR(m.min_spacing(0), 0.1, 1e-14);
}

TEST(Mesh, InactiveAxisHasZeroMetric) {
  grid::Mesh m({8, 1.0, false}, {1, 1.0, false}, {1, 1.0, false});
  EXPECT_FALSE(m.active(1));
  EXPECT_DOUBLE_EQ(m.inv_spacing(1)[0], 0.0);
}

TEST(Mesh, StretchedAxisClustersAtCenter) {
  grid::AxisSpec y{101, 0.032, false, 2.2, -0.016};
  grid::Mesh m({1, 1.0, false}, y, {1, 1.0, false});
  // Spacing at the centre must be smaller than at the edges.
  const double h_mid = m.coord(1, 51) - m.coord(1, 50);
  const double h_edge = m.coord(1, 100) - m.coord(1, 99);
  EXPECT_LT(h_mid, 0.5 * h_edge);
  // Endpoints map exactly.
  EXPECT_NEAR(m.coord(1, 0), -0.016, 1e-12);
  EXPECT_NEAR(m.coord(1, 100), 0.016, 1e-12);
}

TEST(Mesh, StretchedMetricMatchesFiniteDifference) {
  grid::AxisSpec y{81, 0.02, false, 1.8, 0.0};
  grid::Mesh m({1, 1.0, false}, y, {1, 1.0, false});
  for (int j = 1; j < 80; ++j) {
    const double dy_dxi = (m.coord(1, j + 1) - m.coord(1, j - 1)) / 2.0;
    EXPECT_NEAR(m.inv_spacing(1)[j], 1.0 / dy_dxi,
                0.01 / dy_dxi)  // 2nd-order FD check, 1% tolerance
        << j;
  }
}

TEST(Mesh, MonotoneCoordinates) {
  grid::AxisSpec y{64, 0.01, false, 2.5, 0.0};
  grid::Mesh m({1, 1.0, false}, y, {1, 1.0, false});
  for (int j = 1; j < 64; ++j)
    EXPECT_GT(m.coord(1, j), m.coord(1, j - 1));
}

TEST(Decomp, RangesPartitionExactly) {
  grid::Decomp d(50, 47, 13, 4, 3, 2);
  for (int axis = 0; axis < 3; ++axis) {
    const int p = axis == 0 ? 4 : axis == 1 ? 3 : 2;
    const int n = axis == 0 ? 50 : axis == 1 ? 47 : 13;
    int covered = 0, prev_end = 0;
    for (int c = 0; c < p; ++c) {
      auto [b, e] = d.local_range(axis, c);
      EXPECT_EQ(b, prev_end);
      EXPECT_GT(e, b);
      covered += e - b;
      prev_end = e;
    }
    EXPECT_EQ(covered, n);
  }
}

TEST(Decomp, BalancedWithinOnePoint) {
  grid::Decomp d(103, 1, 1, 8, 1, 1);
  int mn = 1 << 30, mx = 0;
  for (int c = 0; c < 8; ++c) {
    auto [b, e] = d.local_range(0, c);
    mn = std::min(mn, e - b);
    mx = std::max(mx, e - b);
  }
  EXPECT_LE(mx - mn, 1);
}

TEST(Decomp, CoordsRoundTrip) {
  grid::Decomp d(16, 16, 16, 2, 3, 4);
  for (int r = 0; r < d.nranks(); ++r) {
    auto c = d.coords_of(r);
    EXPECT_EQ(d.rank_of(c[0], c[1], c[2]), r);
  }
}

TEST(Decomp, NeighborsRespectPeriodicity) {
  grid::Decomp d(16, 16, 16, 4, 1, 1);
  // Non-periodic: edge ranks have no outward neighbour.
  EXPECT_EQ(d.neighbor(0, 0, -1, {false, false, false}), -1);
  EXPECT_EQ(d.neighbor(3, 0, +1, {false, false, false}), -1);
  // Periodic: wraps.
  EXPECT_EQ(d.neighbor(0, 0, -1, {true, false, false}), 3);
  EXPECT_EQ(d.neighbor(3, 0, +1, {true, false, false}), 0);
  // Interior.
  EXPECT_EQ(d.neighbor(1, 0, +1, {false, false, false}), 2);
}

// ---- vmpi ----

TEST(Vmpi, RunsAllRanks) {
  std::atomic<int> count{0};
  vmpi::run(5, [&](vmpi::Comm& c) {
    EXPECT_EQ(c.size(), 5);
    count.fetch_add(c.rank() + 1);
  });
  EXPECT_EQ(count.load(), 15);
}

TEST(Vmpi, PointToPointRoundTrip) {
  vmpi::run(2, [](vmpi::Comm& c) {
    std::vector<double> buf(4);
    if (c.rank() == 0) {
      std::vector<double> msg{1.0, 2.0, 3.0, 4.0};
      c.send(1, 7, msg);
      c.recv(1, 8, buf);
      EXPECT_DOUBLE_EQ(buf[0], 10.0);
    } else {
      c.recv(0, 7, buf);
      EXPECT_DOUBLE_EQ(buf[3], 4.0);
      std::vector<double> reply{10.0, 20.0, 30.0, 40.0};
      c.send(0, 8, reply);
    }
  });
}

TEST(Vmpi, NonBlockingExchangeCompletes) {
  // The solver's ghost-exchange pattern: everyone isends to both
  // neighbours then irecvs; waitall must complete without deadlock.
  const int n = 6;
  vmpi::run(n, [&](vmpi::Comm& c) {
    const int left = (c.rank() + n - 1) % n;
    const int right = (c.rank() + 1) % n;
    std::vector<double> out{double(c.rank())};
    std::vector<double> from_left(1), from_right(1);
    std::vector<vmpi::Request> reqs;
    reqs.push_back(c.isend(right, 1, out));
    reqs.push_back(c.isend(left, 2, out));
    reqs.push_back(c.irecv(left, 1, from_left));
    reqs.push_back(c.irecv(right, 2, from_right));
    c.waitall(reqs);
    EXPECT_DOUBLE_EQ(from_left[0], double(left));
    EXPECT_DOUBLE_EQ(from_right[0], double(right));
  });
}

TEST(Vmpi, MessagesNonOvertakingPerTag) {
  vmpi::run(2, [](vmpi::Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        std::vector<double> v{double(i)};
        c.send(1, 3, v);
      }
    } else {
      std::vector<double> v(1);
      for (int i = 0; i < 10; ++i) {
        c.recv(0, 3, v);
        EXPECT_DOUBLE_EQ(v[0], double(i));
      }
    }
  });
}

TEST(Vmpi, TagsSelectMessages) {
  vmpi::run(2, [](vmpi::Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> a{1.0}, b{2.0};
      c.send(1, 100, a);
      c.send(1, 200, b);
    } else {
      std::vector<double> v(1);
      // Receive in reverse tag order; matching must be by tag.
      c.recv(0, 200, v);
      EXPECT_DOUBLE_EQ(v[0], 2.0);
      c.recv(0, 100, v);
      EXPECT_DOUBLE_EQ(v[0], 1.0);
    }
  });
}

TEST(Vmpi, AllreduceSumMaxMin) {
  vmpi::run(7, [](vmpi::Comm& c) {
    const double r = c.rank();
    EXPECT_DOUBLE_EQ(c.allreduce_sum(r), 21.0);
    EXPECT_DOUBLE_EQ(c.allreduce_max(r), 6.0);
    EXPECT_DOUBLE_EQ(c.allreduce_min(r), 0.0);
  });
}

TEST(Vmpi, VectorAllreduce) {
  vmpi::run(4, [](vmpi::Comm& c) {
    std::vector<double> v{double(c.rank()), 1.0};
    c.allreduce_sum(std::span<double>(v));
    EXPECT_DOUBLE_EQ(v[0], 6.0);
    EXPECT_DOUBLE_EQ(v[1], 4.0);
  });
}

TEST(Vmpi, RepeatedBarriers) {
  vmpi::run(3, [](vmpi::Comm& c) {
    for (int i = 0; i < 50; ++i) c.barrier();
    SUCCEED();
  });
}

TEST(Vmpi, ExceptionPropagatesAndUnblocksPeers) {
  EXPECT_THROW(
      vmpi::run(3,
                [](vmpi::Comm& c) {
                  if (c.rank() == 1) throw s3d::Error("rank 1 died");
                  // Other ranks block on a receive that will never arrive;
                  // the abort must unblock them.
                  std::vector<double> v(1);
                  c.recv((c.rank() + 1) % 3, 9, v);
                }),
      s3d::Error);
}

TEST(Vmpi, CartTopologyNeighbors) {
  vmpi::run(8, [](vmpi::Comm& c) {
    vmpi::Cart cart(c, 2, 2, 2, {true, false, false});
    auto co = cart.coords();
    // x periodic with px=2: both x-neighbours are the same partner rank.
    EXPECT_EQ(cart.neighbor(0, -1), cart.neighbor(0, +1));
    // y non-periodic: coordinate 0 has no -y neighbour.
    if (co[1] == 0) {
      EXPECT_EQ(cart.neighbor(1, -1), -1);
    }
    if (co[1] == 1) {
      EXPECT_EQ(cart.neighbor(1, +1), -1);
    }
  });
}

TEST(Vmpi, ByteMessages) {
  vmpi::run(2, [](vmpi::Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::uint8_t> data{0x53, 0x3d, 0x00, 0xff};
      auto r = c.isend_bytes(1, 5, data);
      c.wait(r);
    } else {
      std::vector<std::uint8_t> buf(16);
      auto r = c.irecv_bytes(0, 5, buf);
      std::size_t len = 0;
      c.wait(r, &len);
      EXPECT_EQ(len, 4u);
      EXPECT_EQ(buf[0], 0x53);
      EXPECT_EQ(buf[3], 0xff);
    }
  });
}
