// Laminar premixed flame solver tests (the PREMIX substitute): flame
// speeds, thicknesses, and parametric trends.

#include <gtest/gtest.h>

#include <cmath>

#include "chem/mechanisms.hpp"
#include "chem/mixing.hpp"
#include "premix1d/premix1d.hpp"

namespace chem = s3d::chem;
namespace pm = s3d::premix1d;

namespace {
// Coarse/short options for tests (benches use finer settings).
pm::Options quick() {
  pm::Options o;
  o.n = 192;
  o.length = 0.012;
  o.t_max = 0.02;
  o.steady_tol = 0.03;
  o.check_interval = 150;
  return o;
}
}  // namespace

TEST(Premix1d, CH4Phi07Preheated800KMatchesPaperBand) {
  // Paper section 7.2: phi = 0.7 CH4/air at 800 K, 1 atm =>
  // S_L = 1.8 m/s, delta_L = 0.3 mm, delta_H ~ 0.14 mm (detailed
  // chemistry). Our 2-step global scheme should land in the same decade
  // with the right orderings.
  auto mech = chem::ch4_bfer2step();
  auto Yu = chem::premixed_fuel_air_Y(mech, "CH4", 0.7);
  auto sol = pm::solve_premixed_flame(mech, 101325.0, 800.0, Yu, quick());
  EXPECT_GT(sol.S_L, 0.5);
  EXPECT_LT(sol.S_L, 6.0);
  EXPECT_GT(sol.delta_L, 5e-5);
  EXPECT_LT(sol.delta_L, 1.5e-3);
  // The reaction layer is thinner than the preheat layer.
  EXPECT_LT(sol.delta_H, sol.delta_L * 1.5);
  // Burnt temperature near the adiabatic value for phi=0.7 at 800 K
  // preheat (~2300 K with full equilibrium; global scheme slightly high).
  EXPECT_GT(sol.T_burnt, 2000.0);
  EXPECT_LT(sol.T_burnt, 2800.0);
}

TEST(Premix1d, FlameSpeedIncreasesWithPreheat) {
  auto mech = chem::ch4_bfer2step();
  auto Yu = chem::premixed_fuel_air_Y(mech, "CH4", 0.7);
  auto cold = pm::solve_premixed_flame(mech, 101325.0, 600.0, Yu, quick());
  auto hot = pm::solve_premixed_flame(mech, 101325.0, 800.0, Yu, quick());
  EXPECT_GT(hot.S_L, cold.S_L * 1.2);
}

TEST(Premix1d, LeanerFlameIsSlower) {
  auto mech = chem::ch4_bfer2step();
  auto Y07 = chem::premixed_fuel_air_Y(mech, "CH4", 0.7);
  auto Y10 = chem::premixed_fuel_air_Y(mech, "CH4", 1.0);
  auto lean = pm::solve_premixed_flame(mech, 101325.0, 800.0, Y07, quick());
  auto stoich = pm::solve_premixed_flame(mech, 101325.0, 800.0, Y10, quick());
  EXPECT_LT(lean.S_L, stoich.S_L);
  EXPECT_LT(lean.T_burnt, stoich.T_burnt);
}

TEST(Premix1d, SolutionProfilesAreMonotoneAndNormalized) {
  auto mech = chem::ch4_bfer2step();
  auto Yu = chem::premixed_fuel_air_Y(mech, "CH4", 0.8);
  auto sol = pm::solve_premixed_flame(mech, 101325.0, 800.0, Yu, quick());
  // T rises from unburnt to burnt without large overshoot.
  EXPECT_NEAR(sol.T.front(), 800.0, 30.0);
  for (std::size_t i = 0; i < sol.T.size(); ++i) {
    EXPECT_GT(sol.T[i], 700.0);
    EXPECT_LT(sol.T[i], sol.T_burnt * 1.08);
  }
  // Mass fractions normalized everywhere.
  for (std::size_t i = 0; i < sol.T.size(); ++i) {
    double sum = 0.0;
    for (const auto& Ys : sol.Y) sum += Ys[i];
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  // Heat release concentrated in a thin layer: positive peak.
  double hrr_max = 0.0;
  for (double v : sol.hrr) hrr_max = std::max(hrr_max, v);
  EXPECT_GT(hrr_max, 1e8);  // W/m^3, vigorous flame
}

TEST(Premix1d, TauFIsConsistent) {
  auto mech = chem::ch4_bfer2step();
  auto Yu = chem::premixed_fuel_air_Y(mech, "CH4", 0.7);
  auto sol = pm::solve_premixed_flame(mech, 101325.0, 800.0, Yu, quick());
  EXPECT_NEAR(sol.tau_f(), sol.delta_L / sol.S_L, 1e-15);
  EXPECT_GT(sol.tau_f(), 0.0);
}
