// Domain-decomposed run over the vmpi message-passing runtime: the same
// 2-D jet split across 2x2 ranks, exactly the paper's parallel structure
// (3-D block decomposition, nearest-neighbour ghost exchange) on one
// machine.
//
//   $ ./examples/parallel_jet

#include <cstdio>

#include "solver/cases.hpp"
#include "solver/solver.hpp"
#include "vmpi/vmpi.hpp"

namespace sv = s3d::solver;

int main() {
  sv::LiftedJetParams prm;
  prm.nx = 64;
  prm.ny = 48;
  prm.Lx = 0.005;
  prm.Ly = 0.005;
  prm.slot_h = 0.0009;
  prm.u_jet = 110.0;
  prm.u_rms = 10.0;
  prm.transport = sv::TransportModel::power_law;
  auto cs = sv::lifted_jet_case(prm);

  std::printf("Running the lifted-jet configuration on a 2x2 rank grid...\n");
  s3d::vmpi::run(4, [&](s3d::vmpi::Comm& comm) {
    sv::Solver s(cs.cfg, comm, 2, 2, 1);
    s.initialize(cs.init);
    for (int it = 0; it < 5; ++it) {
      s.run(20, {}, 10);
      // Global maximum temperature via an MPI-style reduction.
      double T_loc = 0.0;
      const auto& prim = s.primitives();
      const auto& l = s.layout();
      for (int j = 0; j < l.ny; ++j)
        for (int i = 0; i < l.nx; ++i)
          T_loc = std::max(T_loc, prim.T(i, j, 0));
      const double T_glob = comm.allreduce_max(T_loc);
      if (comm.rank() == 0)
        std::printf("  t = %6.1f us   T_max(global) = %.0f K\n",
                    s.time() * 1e6, T_glob);
    }
    // Every rank reports its block, like an S3D rank log.
    const auto off = s.offset();
    std::printf(
        "  rank %d owns [%d..%d) x [%d..%d)  (%d x %d interior points)\n",
        comm.rank(), off[0], off[0] + s.layout().nx, off[1],
        off[1] + s.layout().ny, s.layout().nx, s.layout().ny);
  });
  std::printf("All ranks agreed on the ghost-exchanged solution.\n");
  return 0;
}
