// Domain-decomposed run over the vmpi message-passing runtime: the same
// 2-D jet split across ranks, exactly the paper's parallel structure
// (block decomposition, nearest-neighbour ghost exchange) on one
// machine. Thin wrapper: `scenario_runner --scenario lifted_jet
// --ranks 4` with the scaled-down preset.
//
//   $ ./examples/parallel_jet

#include "scenario_cli.hpp"

int main() {
  s3d::cli::RunnerOptions o;
  o.scenario = "lifted_jet";
  o.set = {{"nx", "64"},      {"ny", "48"},        {"Lx", "0.005"},
           {"Ly", "0.005"},   {"slot_h", "0.0009"}, {"u_jet", "110"},
           {"u_rms", "10"},   {"transport", "power_law"}};
  o.analyses = {"conditional_means"};
  o.ranks = 4;
  o.steps = 100;
  o.interval = 20;
  return s3d::cli::run(o);
}
