#include "scenario_cli.hpp"

#include <cstdio>
#include <memory>

#include "solver/health.hpp"
#include "solver/solver.hpp"
#include "viz/analysis.hpp"
#include "vmpi/vmpi.hpp"

namespace s3d::cli {

namespace sv = s3d::solver;
namespace viz = s3d::viz;

namespace {

void split_csv(const std::string& arg, std::vector<std::string>& into) {
  std::size_t pos = 0;
  while (pos <= arg.size()) {
    const std::size_t c = arg.find(',', pos);
    const std::string tok =
        arg.substr(pos, c == std::string::npos ? c : c - pos);
    if (!tok.empty()) into.push_back(tok);
    if (c == std::string::npos) break;
    pos = c + 1;
  }
}

const char* kUsage =
    "usage: scenario_runner --scenario NAME [--set k=v ...]\n"
    "         [--analysis a,b] [--aset name.key=v ...] [--steps N]\n"
    "         [--interval N] [--emit-every N] [--dt-every N] [--out DIR]\n"
    "         [--ranks N] [--guard] | --list | --describe NAME\n";

std::string need_value(int argc, char** argv, int& i) {
  if (i + 1 >= argc)
    throw sv::ConfigError(std::string("cli.") + (argv[i] + 2),
                          "missing value");
  return argv[++i];
}

void describe(const std::string& name) {
  const auto& sc = sv::ScenarioRegistry::instance().at(name);
  std::printf("%s — %s\nparameters:\n", sc.name.c_str(),
              sc.description.c_str());
  for (const auto& ps : sc.schema)
    std::printf("  %-12s default %-14s %s\n", ps.key.c_str(),
                ps.def.c_str(), ps.help.c_str());
}

void list_all() {
  std::printf("scenarios:\n");
  for (const auto& n : sv::ScenarioRegistry::instance().names())
    std::printf("  %-22s %s\n", n.c_str(),
                sv::ScenarioRegistry::instance().at(n).description.c_str());
  std::printf("analyses:\n");
  for (const auto& n : viz::AnalysisRegistry::instance().names())
    std::printf("  %-22s %s\n", n.c_str(),
                viz::AnalysisRegistry::instance().at(n).description.c_str());
}

/// (px, py, pz) for `ranks`: split the finest active axis that divides
/// evenly, preferring y (inflow scenarios stream along x).
std::array<int, 3> decompose(const sv::Config& cfg, int ranks) {
  if (cfg.y.n > 1 && cfg.y.n % ranks == 0) return {1, ranks, 1};
  if (cfg.x.n % ranks == 0) return {ranks, 1, 1};
  if (cfg.z.n > 1 && cfg.z.n % ranks == 0) return {1, 1, ranks};
  throw sv::ConfigError("cli.ranks", "no grid axis divides into " +
                                         std::to_string(ranks) + " ranks");
}

void run_one(const sv::CaseSetup& cs, const RunnerOptions& opt,
             vmpi::Comm* comm) {
  std::unique_ptr<sv::Solver> s;
  if (comm) {
    const auto p = decompose(cs.cfg, comm->size());
    s = std::make_unique<sv::Solver>(cs.cfg, *comm, p[0], p[1], p[2]);
  } else {
    s = std::make_unique<sv::Solver>(cs.cfg);
  }
  s->initialize(cs.init);

  viz::AnalysisOptions ao;
  ao.interval = opt.interval;
  ao.emit_every = opt.emit_every;
  ao.out_dir = opt.out;
  viz::AnalysisDriver driver(cs, ao);
  for (const auto& name : opt.analyses) {
    auto it = opt.aset.find(name);
    driver.add(name, it == opt.aset.end() ? sv::ParamMap{} : it->second);
  }
  driver.attach(*s, comm);

  if (opt.guard) {
    sv::GuardOptions g;
    g.dt_every = opt.dt_every;
    g.sidecar = driver.sidecar();
    g.on_clean_step = [&](long step) { driver.on_step(step); };
    const auto rep = sv::run_guarded(*s, opt.steps, g, comm);
    if (!comm || comm->rank() == 0)
      std::printf("guarded: %ld steps, %d rollbacks, %ld scans\n",
                  rep.final_steps, rep.rollbacks, rep.scans);
  } else {
    s->run(
        opt.steps, [&](int) { driver.on_step(s->steps_taken()); },
        opt.dt_every);
  }

  const auto paths = driver.emit(s->steps_taken());
  if (!comm || comm->rank() == 0) {
    std::printf("t = %.6e s after %d steps, %ld analysis invocations\n",
                s->time(), s->steps_taken(), driver.invocations());
    for (const auto& p : paths) std::printf("wrote %s\n", p.c_str());
  }
}

}  // namespace

RunnerOptions parse_args(int argc, char** argv) {
  RunnerOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--list") {
      o.list = true;
    } else if (a == "--describe") {
      o.describe = need_value(argc, argv, i);
    } else if (a == "--scenario") {
      o.scenario = need_value(argc, argv, i);
    } else if (a == "--set") {
      sv::parse_kv("cli.set", need_value(argc, argv, i), o.set);
    } else if (a == "--analysis") {
      split_csv(need_value(argc, argv, i), o.analyses);
    } else if (a == "--aset") {
      // name.key=value: route the override to one analysis instance.
      const std::string kv = need_value(argc, argv, i);
      const auto dot = kv.find('.');
      const auto eq = kv.find('=');
      if (dot == std::string::npos || eq == std::string::npos || dot > eq ||
          dot == 0)
        throw sv::ConfigError("cli.aset",
                              "'" + kv + "' is not name.key=value");
      sv::parse_kv("cli.aset", kv.substr(dot + 1),
                   o.aset[kv.substr(0, dot)]);
    } else if (a == "--steps") {
      o.steps = static_cast<int>(
          sv::parse_int_param("cli.steps", need_value(argc, argv, i)));
    } else if (a == "--interval") {
      o.interval = static_cast<int>(
          sv::parse_int_param("cli.interval", need_value(argc, argv, i)));
    } else if (a == "--emit-every") {
      o.emit_every = static_cast<int>(
          sv::parse_int_param("cli.emit_every", need_value(argc, argv, i)));
    } else if (a == "--dt-every") {
      o.dt_every = static_cast<int>(
          sv::parse_int_param("cli.dt_every", need_value(argc, argv, i)));
    } else if (a == "--out") {
      o.out = need_value(argc, argv, i);
    } else if (a == "--ranks") {
      o.ranks = static_cast<int>(
          sv::parse_int_param("cli.ranks", need_value(argc, argv, i)));
    } else if (a == "--guard") {
      o.guard = true;
    } else {
      throw sv::ConfigError("cli.args", "unknown flag '" + a + "'");
    }
  }
  return o;
}

int run(const RunnerOptions& opt) {
  if (opt.list) {
    list_all();
    return 0;
  }
  if (!opt.describe.empty()) {
    describe(opt.describe);
    return 0;
  }
  if (opt.scenario.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const sv::CaseSetup cs =
      sv::ScenarioRegistry::instance().build(opt.scenario, opt.set);
  if (opt.ranks > 1) {
    vmpi::run(opt.ranks,
              [&](vmpi::Comm& comm) { run_one(cs, opt, &comm); });
  } else {
    run_one(cs, opt, nullptr);
  }
  return 0;
}

int main_with_args(int argc, char** argv) {
  try {
    return run(parse_args(argc, argv));
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
    return 1;
  }
}

}  // namespace s3d::cli
