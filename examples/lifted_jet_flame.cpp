// The paper's section-6 configuration, scaled down: a turbulent H2/N2 jet
// (65/35 by volume, 400 K) issuing into hot air coflow at 1100 K -- above
// the crossover temperature, so the flame stabilizes by AUTOIGNITION.
// Renders OH/HO2 volume images in situ while the run progresses and prints
// flame-base diagnostics.
//
//   $ ./examples/lifted_jet_flame [out_dir]

#include <algorithm>
#include <cstdio>
#include <string>

#include "solver/cases.hpp"
#include "solver/diagnostics.hpp"
#include "solver/solver.hpp"
#include "viz/insitu.hpp"

namespace sv = s3d::solver;
namespace viz = s3d::viz;

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : ".";

  sv::LiftedJetParams prm;
  prm.nx = 80;
  prm.ny = 64;
  prm.Lx = 0.006;
  prm.Ly = 0.006;
  prm.slot_h = 0.0009;
  prm.u_jet = 130.0;
  prm.u_rms = 13.0;
  prm.transport = sv::TransportModel::power_law;
  auto cs = sv::lifted_jet_case(prm);
  const auto& mech = *cs.cfg.mech;

  std::printf("Lifted H2/N2 jet: %g m/s into %g K coflow, Z_st = %.3f\n",
              prm.u_jet, prm.T_coflow, cs.Z_st);

  sv::Solver s(cs.cfg);
  s.initialize(cs.init);
  const auto& l = s.layout();
  const int ioh = mech.index("OH"), iho2 = mech.index("HO2");

  // In-situ visualization: render OH while the solver runs (section 8.3).
  viz::InSituVis vis(out, 400);
  viz::TransferFunction tf;
  tf.hi = 5e-3;
  tf.opacity = 0.9;
  vis.add_product({"lifted_oh", [&]() { return &s.primitives().Y[ioh]; }, tf});

  std::printf("\n%10s %12s %14s %14s\n", "t [us]", "T_max [K]",
              "flame base x/h", "peak HO2 x/h");
  const double t_end = 1.2e-4;
  int step = 0;
  while (s.time() < t_end) {
    s.run(100, {}, 10);
    step += 100;
    vis.on_step(step);
    auto& prim = s.primitives();
    double T_max = 0.0;
    double base_x = prm.Lx, ho2_x = 0.0, ho2_max = 0.0;
    for (int j = 0; j < l.ny; ++j)
      for (int i = 0; i < l.nx; ++i) {
        T_max = std::max(T_max, prim.T(i, j, 0));
        if (prim.Y[ioh](i, j, 0) > 1e-3)
          base_x = std::min(base_x, s.coord(0, i));
        if (prim.Y[iho2](i, j, 0) > ho2_max) {
          ho2_max = prim.Y[iho2](i, j, 0);
          ho2_x = s.coord(0, i);
        }
      }
    std::printf("%10.1f %12.0f %14.2f %14.2f\n", s.time() * 1e6, T_max,
                base_x / prm.slot_h, ho2_x / prm.slot_h);
  }
  std::printf(
      "\nHO2 (the autoignition precursor) peaks upstream of the OH flame\n"
      "base: the lifted flame is stabilized by autoignition, the paper's\n"
      "central section-6 conclusion. %d in-situ frames written to %s\n",
      vis.frames_written(), out.c_str());
  return 0;
}
