// The paper's section-6 configuration, scaled down: a turbulent H2/N2 jet
// (65/35 by volume, 400 K) issuing into hot air coflow at 1100 K -- above
// the crossover temperature, so the flame stabilizes by AUTOIGNITION.
// Thin wrapper over the scenario runner: the case comes from the
// ScenarioRegistry ("lifted_jet") and the in-situ OH rendering plus
// flame statistics from the AnalysisRegistry.
//
//   $ ./examples/lifted_jet_flame [out_dir]

#include "scenario_cli.hpp"

int main(int argc, char** argv) {
  s3d::cli::RunnerOptions o;
  o.scenario = "lifted_jet";
  o.set = {{"nx", "80"},      {"ny", "64"},        {"Lx", "0.006"},
           {"Ly", "0.006"},   {"slot_h", "0.0009"}, {"u_jet", "130"},
           {"u_rms", "13"},   {"transport", "power_law"}};
  o.analyses = {"conditional_means", "insitu_render"};
  o.out = argc > 1 ? argv[1] : ".";
  o.aset["insitu_render"] = {{"dir", o.out},
                             {"field", "Y:OH"},
                             {"hi", "5e-3"},
                             {"opacity", "0.9"}};
  o.steps = 800;
  o.interval = 400;
  return s3d::cli::run(o);
}
