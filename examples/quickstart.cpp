// Quickstart: ignite a 1-D hydrogen/air flame with the S3D++ compressible
// DNS solver and watch it burn.
//
//   $ ./examples/quickstart
//
// This walks the core public API end to end:
//   1. pick a chemical mechanism (detailed H2/air),
//   2. describe the domain and boundary conditions (Config),
//   3. set an initial condition (premixed reactants + hot ignition kernel),
//   4. time-march and monitor temperature/fuel.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "chem/mechanisms.hpp"
#include "chem/mixing.hpp"
#include "solver/solver.hpp"

namespace sv = s3d::solver;
namespace chem = s3d::chem;

int main() {
  // 1. Chemistry: Li et al. (2004) detailed H2/air, 9 species.
  auto mech = std::make_shared<const chem::Mechanism>(chem::h2_li2004());
  std::printf("Mechanism %s: %d species, %d reactions\n",
              mech->name().c_str(), mech->n_species(), mech->n_reactions());

  // 2. Domain: 6 mm, 192 points, non-reflecting outflows on both ends.
  sv::Config cfg;
  cfg.mech = mech;
  cfg.x = {192, 0.006, false};
  cfg.y = {1, 1.0, false};
  cfg.z = {1, 1.0, false};
  cfg.faces[0][0] = {sv::BcKind::nscbc_outflow, 101325.0, 0.25};
  cfg.faces[0][1] = {sv::BcKind::nscbc_outflow, 101325.0, 0.25};
  cfg.transport = sv::TransportModel::constant_lewis;

  // 3. Initial condition: stoichiometric H2/air at 300 K with a hot spot.
  auto Yu = chem::premixed_fuel_air_Y(*mech, "H2", 1.0);
  sv::Solver solver(cfg);
  solver.initialize([&](double x, double, double, sv::InflowState& st,
                        double& p) {
    st.u = st.v = st.w = 0.0;
    st.T = 300.0 + 1500.0 * std::exp(-std::pow((x - 0.003) / 4e-4, 2));
    for (int i = 0; i < mech->n_species(); ++i) st.Y[i] = Yu[i];
    p = 101325.0;
  });

  // 4. March 25 microseconds, reporting every 5.
  const int ih2 = mech->index("H2");
  std::printf("\n%10s %12s %12s %12s\n", "t [us]", "T_max [K]", "p_max [kPa]",
              "Y_H2 min");
  while (solver.time() < 2.5e-5) {
    const double t_next = solver.time() + 5e-6;
    while (solver.time() < t_next) solver.step(0.7 * solver.stable_dt());
    const auto& prim = solver.primitives();
    double T_max = 0, p_max = 0, yh2_min = 1;
    for (int i = 0; i < 192; ++i) {
      T_max = std::max(T_max, prim.T(i, 0, 0));
      p_max = std::max(p_max, prim.p(i, 0, 0));
      yh2_min = std::min(yh2_min, prim.Y[ih2](i, 0, 0));
    }
    std::printf("%10.1f %12.0f %12.1f %12.2e\n", solver.time() * 1e6, T_max,
                p_max / 1e3, yh2_min);
  }
  std::printf("\nA premixed flame is consuming the mixture outward from the "
              "kernel.\nNext: examples/lifted_jet_flame and "
              "examples/bunsen_premixed for the paper's 2-D runs.\n");
  return 0;
}
