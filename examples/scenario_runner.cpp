// Unified scenario runner (DESIGN.md §15): every registered case and
// in-situ analysis, one CLI.
//
//   $ ./examples/scenario_runner --list
//   $ ./examples/scenario_runner --describe lifted_jet
//   $ ./examples/scenario_runner --scenario lifted_jet
//       --set nx=80 --set u_jet=130
//       --analysis conditional_means,scalar_dissipation
//       --steps 400 --interval 50 --out /tmp/run
//
// --ranks N replays the same run domain-decomposed over the vmpi
// runtime; --guard runs it under the health sentinel with the analysis
// accumulators riding the rollback snapshot ring.

#include "scenario_cli.hpp"

int main(int argc, char** argv) {
  return s3d::cli::main_with_args(argc, argv);
}
