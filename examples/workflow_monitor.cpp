// Runs the fig.-16 S3D monitoring workflow against a live producer:
// restart morphing + transfer + archival, netcdf plotting, and the min/max
// dashboard, with checkpointed fault tolerance.
//
//   $ ./examples/workflow_monitor [workdir]

#include <cstdio>
#include <filesystem>

#include "workflow/s3d_pipeline.hpp"

namespace wf = s3d::workflow;
namespace fs = std::filesystem;

int main(int argc, char** argv) {
  const fs::path base = argc > 1 ? argv[1] : "workflow_demo";
  fs::remove_all(base);

  wf::S3dWorkflowDirs dirs{base / "run",  base / "ewok",  base / "sandia",
                           base / "hpss", base / "dashboard",
                           base / "logs"};
  wf::ProvenanceStore prov;
  wf::S3dMonitoringWorkflow mon(dirs, /*restart_pieces=*/8, &prov);
  wf::FakeSimulation sim(dirs.run_dir, 8);

  std::printf("Pumping 5 simulation steps through the three pipelines...\n");
  for (int step = 0; step < 5; ++step) {
    sim.emit_step(step);
    const long fired = mon.pump();
    std::printf("  step %d: %ld actor firings\n", step, fired);
  }

  std::printf("\nResults:\n");
  std::printf("  morphed+transferred restarts: %ld\n",
              mon.transfer().executed());
  std::printf("  archived to HPSS stand-in:    %ld\n",
              mon.archiver().executed());
  std::printf("  dashboard samples (T):        %d\n",
              mon.dashboard().samples("T"));
  std::printf("  provenance records:           %zu\n",
              prov.records().size());

  const auto lin = prov.lineage((dirs.remote_dir / "morph_0.dat").string());
  std::printf("  lineage of sandia/morph_0.dat: %zu ancestor artifacts\n",
              lin.size());
  std::printf(
      "\nBrowse %s: dashboard/ has SVG time traces and per-step plots;\n"
      "logs/ holds the checkpoint logs that make restarts skip completed\n"
      "work (kill and rerun this example to see it).\n",
      base.string().c_str());
  return 0;
}
