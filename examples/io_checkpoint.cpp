// Demonstrates the parallel-I/O layer (paper section 5): the same S3D
// checkpoint written four ways to a simulated Lustre-like filesystem, with
// the lock-conflict accounting that explains the performance gaps.
//
//   $ ./examples/io_checkpoint

#include <cstdio>

#include "iosim/simfs.hpp"
#include "iosim/writers.hpp"

namespace io = s3d::iosim;

int main() {
  io::CheckpointSpec spec;
  spec.nx = spec.ny = spec.nz = 50;  // 15.26 MB per process
  spec.px = 4;
  spec.py = 2;
  spec.pz = 2;  // 16 processes
  std::printf(
      "S3D checkpoint: %d procs x %.2f MB (mass 11 + velocity 3 + pressure "
      "+ temperature)\n\n",
      spec.nprocs(), spec.bytes_per_proc() / 1e6);

  struct Method {
    const char* name;
    io::WriteResult (*fn)(io::SimFS&, const io::CheckpointSpec&,
                          const io::NetParams&, int, double);
  };
  const Method methods[] = {
      {"Fortran file-per-process", io::write_fortran},
      {"native collective (two-phase)", io::write_native_collective},
      {"MPI-I/O caching (aligned)", io::write_mpiio_caching},
      {"two-stage write-behind", io::write_write_behind},
  };

  std::printf("%-32s %10s %10s %12s %10s %6s\n", "method", "open [ms]",
              "write [s]", "BW [MB/s]", "conflicts", "RMWs");
  for (const auto& m : methods) {
    io::SimFS fs(io::lustre_like());
    auto r = m.fn(fs, spec, {}, 0, 0.0);
    std::printf("%-32s %10.1f %10.3f %12.1f %10ld %6ld\n", m.name,
                r.open_time * 1e3, r.write_time, r.bandwidth() / 1e6,
                fs.stats().n_lock_conflicts, fs.stats().n_rmw);
  }
  std::printf(
      "\nThe unaligned two-phase writer false-shares stripe locks at its\n"
      "file-domain boundaries (conflicts + read-modify-writes); the\n"
      "page-aligned caching and write-behind layers eliminate them -- the\n"
      "mechanism behind the paper's figure 9.\n");
  return 0;
}
