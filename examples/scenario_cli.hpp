#pragma once
// Shared command-line driver behind examples/scenario_runner and the thin
// per-case wrappers (DESIGN.md §15): every example resolves its case
// through ScenarioRegistry and its in-situ diagnostics through
// AnalysisRegistry, so the CLI exercises exactly the validated plugin
// construction paths the tests pin.

#include <string>
#include <vector>

#include "solver/scenario.hpp"

namespace s3d::cli {

struct RunnerOptions {
  std::string scenario;
  solver::ParamMap set;  ///< --set k=v scenario parameter overrides
  std::vector<std::string> analyses;          ///< --analysis a,b
  std::map<std::string, solver::ParamMap> aset;  ///< --aset name.key=v
  int steps = 200;       ///< --steps
  int interval = 50;     ///< --interval (analysis cadence, steps)
  int emit_every = 1;    ///< --emit-every (invocations per emission)
  int dt_every = 10;     ///< --dt-every (stable-dt re-estimation cadence)
  std::string out = "."; ///< --out
  int ranks = 1;         ///< --ranks (1: serial)
  bool guard = false;    ///< --guard (run under the health sentinel)
  bool list = false;     ///< --list
  std::string describe;  ///< --describe name
};

/// Parse argv (past argv[0]); throws ConfigError on malformed flags.
RunnerOptions parse_args(int argc, char** argv);

/// Execute: --list/--describe print and return, otherwise build the
/// scenario, attach the requested analyses, run (serial, parallel, or
/// guarded), and emit the final analysis files. Returns the process exit
/// code; prints typed errors to stderr rather than throwing.
int run(const RunnerOptions& opt);

/// parse_args + run with the standard error reporting (the main() body
/// of every wrapper).
int main_with_args(int argc, char** argv);

}  // namespace s3d::cli
