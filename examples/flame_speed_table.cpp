// Laminar flame computations with the premix1d solver (PREMIX substitute):
// a small table of flame speed and thickness vs equivalence ratio and
// preheat temperature for the 2-step CH4/air scheme.
//
//   $ ./examples/flame_speed_table

#include <cstdio>

#include "chem/mechanisms.hpp"
#include "chem/mixing.hpp"
#include "premix1d/premix1d.hpp"

namespace chem = s3d::chem;
namespace pm = s3d::premix1d;

int main() {
  auto mech = chem::ch4_bfer2step();
  pm::Options opt;
  opt.n = 224;
  opt.length = 0.012;
  opt.t_max = 0.025;

  std::printf("Laminar premixed CH4/air flames (2-step global scheme):\n\n");
  std::printf("%6s %8s %12s %14s %14s %10s\n", "phi", "T_u [K]", "S_L [m/s]",
              "delta_L [mm]", "delta_H [mm]", "T_b [K]");
  for (double Tu : {700.0, 800.0}) {
    for (double phi : {0.6, 0.7, 0.85, 1.0}) {
      auto Yu = chem::premixed_fuel_air_Y(mech, "CH4", phi);
      auto sol = pm::solve_premixed_flame(mech, 101325.0, Tu, Yu, opt);
      std::printf("%6.2f %8.0f %12.2f %14.3f %14.3f %10.0f\n", phi, Tu,
                  sol.S_L, sol.delta_L * 1e3, sol.delta_H * 1e3,
                  sol.T_burnt);
    }
  }
  std::printf(
      "\nThe paper's reference point (phi = 0.7, 800 K): S_L = 1.8 m/s,\n"
      "delta_L = 0.3 mm, delta_H = 0.14 mm with detailed chemistry.\n");
  return 0;
}
