// The paper's section-7 configuration, scaled down: a lean premixed
// CH4/air slot Bunsen flame (phi = 0.7, 800 K reactants) surrounded by a
// hot-products coflow, wrinkled by inflow turbulence. Tracks flame-surface
// length (wrinkling) and the mean progress-variable gradient (thickness).
//
//   $ ./examples/bunsen_premixed [u_rms_over_SL]

#include <cstdio>
#include <cstdlib>

#include "solver/cases.hpp"
#include "solver/diagnostics.hpp"
#include "solver/solver.hpp"

namespace sv = s3d::solver;

int main(int argc, char** argv) {
  const double u_over_sl = argc > 1 ? std::atof(argv[1]) : 6.0;
  const double SL_est = 1.45;  // from premix1d at phi=0.7, 800 K

  sv::BunsenParams prm;
  prm.nx = 80;
  prm.ny = 64;
  prm.Lx = 0.0066;
  prm.Ly = 0.0055;
  prm.u_jet = 70.0;
  prm.u_coflow = 18.0;
  prm.u_rms = u_over_sl * SL_est;
  prm.turb_len = 0.0003;
  auto cs = sv::bunsen_case(prm);
  const auto& mech = *cs.cfg.mech;

  std::printf(
      "Slot Bunsen: phi=%.1f CH4/air at %g K, u'/S_L = %.1f, coflow = "
      "complete\ncombustion products at %.0f K\n",
      prm.phi, prm.T_unburnt, u_over_sl, cs.T_burnt);

  sv::Solver s(cs.cfg);
  s.initialize(cs.init);
  const auto& l = s.layout();

  std::printf("\n%10s %16s %18s\n", "t [us]", "flame length / h",
              "mean |grad c| dL");
  const double dL = 2.7e-4;
  while (s.time() < 2.0e-4) {
    s.run(120, {}, 10);
    auto& prim = s.primitives();
    auto c = sv::progress_variable_field(mech, prim, l, cs.Y_o2_unburnt,
                                         cs.Y_o2_burnt);
    auto gc = sv::gradient_magnitude(s.rhs().ops(), c);
    const double len =
        sv::contour_length_2d(c, l, s.mesh(), s.offset(), 0.65);
    double gsum = 0.0;
    long gn = 0;
    for (int j = 0; j < l.ny; ++j)
      for (int i = 0; i < l.nx; ++i)
        if (c(i, j, 0) > 0.2 && c(i, j, 0) < 0.8) {
          gsum += gc(i, j, 0) * dL;
          ++gn;
        }
    std::printf("%10.1f %16.2f %18.3f\n", s.time() * 1e6,
                len / prm.slot_h, gn ? gsum / gn : 0.0);
  }
  std::printf(
      "\nHigher u'/S_L wrinkles the flame (longer contour) and thickens\n"
      "the preheat layer (smaller |grad c|). Rerun with a different\n"
      "argument, e.g. `bunsen_premixed 3` vs `bunsen_premixed 10`, to see\n"
      "the paper's case A -> C trend.\n");
  return 0;
}
