// The paper's section-7 configuration, scaled down: a lean premixed
// CH4/air slot Bunsen flame (phi = 0.7, 800 K reactants) surrounded by a
// hot-products coflow, wrinkled by inflow turbulence. Thin wrapper over
// the scenario runner: conditional means over the progress variable
// track the flame brush.
//
//   $ ./examples/bunsen_premixed [u_rms_over_SL]

#include <cstdio>
#include <cstdlib>

#include "scenario_cli.hpp"

int main(int argc, char** argv) {
  const double u_over_sl = argc > 1 ? std::atof(argv[1]) : 6.0;
  const double SL_est = 1.45;  // from premix1d at phi=0.7, 800 K

  s3d::cli::RunnerOptions o;
  o.scenario = "bunsen";
  char urms[32];
  std::snprintf(urms, sizeof urms, "%.6g", u_over_sl * SL_est);
  o.set = {{"nx", "80"},      {"ny", "64"},     {"Lx", "0.0066"},
           {"Ly", "0.0055"},  {"u_jet", "70"},  {"u_coflow", "18"},
           {"u_rms", urms},   {"turb_len", "0.0003"}};
  o.analyses = {"conditional_means"};
  o.steps = 480;
  o.interval = 120;
  std::printf("Slot Bunsen at u'/S_L = %.1f\n", u_over_sl);
  return s3d::cli::run(o);
}
