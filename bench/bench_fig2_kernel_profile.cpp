// Figure 2: distribution of exclusive time among S3D's procedures and
// loops for the two equivalence classes of processes in a 6400-core hybrid
// execution -- XT4-resident ranks spend substantially longer in MPI_Wait,
// XT3-resident ranks spend it in the memory-intensive loops instead.
//
// The per-kernel decomposition is measured live from this repository's
// solver (TAU substitute: the RHS phase timers), then projected onto the
// two node classes with the calibrated cluster model.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "chem/mechanisms.hpp"
#include "chem/mixing.hpp"
#include "common/table.hpp"
#include "perf/model.hpp"
#include "solver/solver.hpp"

namespace sv = s3d::solver;
namespace chem = s3d::chem;

int main() {
  using s3dpp_bench::banner;
  banner("Figure 2", "per-kernel exclusive time, XT3-class vs XT4-class ranks");

  // Measure the kernel decomposition on a small reacting model problem.
  const int n = 20;
  auto mech = std::make_shared<const chem::Mechanism>(chem::h2_li2004());
  sv::Config cfg;
  cfg.mech = mech;
  cfg.x = {n, 0.01, true};
  cfg.y = {n, 0.01, true};
  cfg.z = {n, 0.01, true};
  for (int a = 0; a < 3; ++a)
    for (auto& f : cfg.faces[a]) f.kind = sv::BcKind::periodic;
  cfg.transport = sv::TransportModel::constant_lewis;
  cfg.T_ref = 300.0;
  auto Y0 = chem::premixed_fuel_air_Y(*mech, "H2", 1.0);
  sv::Solver s(cfg);
  s.initialize([&](double x, double, double, sv::InflowState& st, double& p) {
    st.u = st.v = st.w = 0.0;
    st.T = 310.0;
    st.Y.fill(0.0);
    for (std::size_t i = 0; i < Y0.size(); ++i) st.Y[i] = Y0[i];
    p = 101325.0 * (1.0 + 0.005 * std::sin(600.0 * x));
  });
  const double dt = 0.5 * s.stable_dt();
  s.step(dt);
  s.rhs().reset_timers();
  for (int i = 0; i < 3; ++i) s.step(dt);
  const auto& tm = s.rhs().timers();

  std::vector<s3d::perf::KernelShare> shares = {
      {"GET_PRIMITIVES", tm.primitives, 0.2},
      {"DERIVATIVES", tm.gradients, 0.55},
      {"COMPUTESPECIESDIFFFLUX", tm.diffusive_flux, 0.5},
      {"CONVECTIVE_FLUX+DIV", tm.convective, 0.55},
      {"REACTION_RATE", tm.reaction_rate, 0.05},
      {"BOUNDARY+FILTER", tm.boundary + tm.halo, 0.2},
  };
  s3d::perf::ClusterModel model(shares, 55e-6);

  // 6400-core hybrid run, 50^3 per core: per-step seconds per kernel for a
  // representative rank of each class.
  const std::size_t pts = 50 * 50 * 50;
  auto bd3 = model.kernel_breakdown(s3d::perf::xt3(), pts, true);
  auto bd4 = model.kernel_breakdown(s3d::perf::xt4(), pts, true);

  s3d::Table t({"kernel", "XT3-class rank [ms/step]", "XT4-class rank [ms/step]",
                "XT3/XT4"});
  for (std::size_t k = 0; k < bd3.size(); ++k) {
    const double r = bd4[k].seconds > 0 ? bd3[k].seconds / bd4[k].seconds : 0;
    t.add_row({bd3[k].name, s3d::Table::num(bd3[k].seconds * 1e3, 4),
               s3d::Table::num(bd4[k].seconds * 1e3, 4),
               bd4[k].seconds > 0 ? s3d::Table::num(r, 3) : "-"});
  }
  t.print(std::cout);

  std::printf(
      "\nPaper fig. 2 findings reproduced:\n"
      " - REACTION_RATE (CPU-bound) takes nearly identical time in both\n"
      "   classes (ratio ~1).\n"
      " - COMPUTESPECIESDIFFFLUX and the other memory-intensive loops take\n"
      "   noticeably longer on XT3-class ranks (ratio ~bandwidth ratio).\n"
      " - XT4-class ranks accumulate the difference as MPI_Wait; XT3-class\n"
      "   ranks wait ~0.\n");
  return 0;
}
