// Figure 16/17: the S3D monitoring workflow -- three concurrent pipelines
// keeping up with a producing simulation, with checkpointed fault
// tolerance. Reports per-pipeline throughput, the dashboard contents, and
// the restart/recovery behaviour.

#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "workflow/s3d_pipeline.hpp"

namespace wf = s3d::workflow;
namespace fs = std::filesystem;

int main() {
  s3dpp_bench::banner("Figures 16/17", "S3D Kepler-style monitoring workflow");
  const fs::path base = fs::path(s3dpp_bench::out_dir()) / "workflow";
  fs::remove_all(base);

  wf::S3dWorkflowDirs dirs{base / "run",  base / "work", base / "remote",
                           base / "hpss", base / "dash", base / "logs"};
  const int pieces = 16;   // restart pieces per step (N-to-1 morph)
  const int steps = s3dpp_bench::full_mode() ? 200 : 40;

  wf::ProvenanceStore prov;
  wf::S3dMonitoringWorkflow mon(dirs, pieces, &prov);
  wf::FakeSimulation sim(dirs.run_dir, pieces);

  s3d::Timer t;
  long firings = 0;
  for (int s = 0; s < steps; ++s) {
    sim.emit_step(s);
    firings += mon.pump();  // the workflow keeps up with the simulation
  }
  const double wall = t.seconds();

  std::printf("Simulated %d steps x %d restart pieces (+ ncdat + minmax):\n",
              steps, pieces);
  std::printf("  actor firings:        %ld\n", firings);
  std::printf("  morphs transferred:   %ld\n", mon.transfer().executed());
  std::printf("  morphs archived:      %ld\n", mon.archiver().executed());
  std::printf("  dashboard T samples:  %d\n", mon.dashboard().samples("T"));
  std::printf("  provenance records:   %zu\n", prov.records().size());
  std::printf("  wall time:            %.3f s  (%.0f files/s through the "
              "workflow)\n",
              wall, steps * (pieces + 2) / wall);

  // Fault tolerance: restart the workflow; completed transfers skip.
  wf::S3dMonitoringWorkflow mon2(dirs, pieces);
  mon2.pump();
  std::printf(
      "\nAfter a workflow restart: %ld transfers re-executed, %ld skipped "
      "via the checkpoint log\n(paper: 'the automatic check pointing ... "
      "allows the workflow to skip steps that\nhad already been "
      "accomplished').\n",
      mon2.transfer().executed(), mon2.transfer().skipped());

  // Lineage of the first remote artifact.
  const auto lin =
      prov.lineage((dirs.remote_dir / "morph_0.dat").string());
  std::printf(
      "\nProvenance: remote morph_0.dat descends from %zu artifacts "
      "(%d restart pieces + 1 morph).\nDashboard artifacts in %s\n",
      lin.size(), pieces, (dirs.dashboard_dir).string().c_str());
  return 0;
}
