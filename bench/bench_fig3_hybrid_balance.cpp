// Figure 3: predicted average cost per grid point per step when the
// computational load is balanced between XT3 and XT4 nodes by giving XT3
// nodes a 50x50x40 block (0.8x the XT4 block), as a function of the
// proportion of XT4 nodes. Paper: 55 us at p = 1, ~69 us at p = 0, and
// ~61 us at Jaguar's actual 46% XT4 share.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "perf/model.hpp"

int main() {
  using s3dpp_bench::banner;
  banner("Figure 3", "balanced-load hybrid cost vs proportion of XT4 nodes");

  // The canonical decomposition (the live-measured version is printed by
  // bench_fig1; this figure is a pure model statement).
  std::vector<s3d::perf::KernelShare> shares = {
      {"GET_PRIMITIVES", 0.10, 0.2},   {"DERIVATIVES", 0.25, 0.55},
      {"COMPUTESPECIESDIFFFLUX", 0.22, 0.5},
      {"CONVECTIVE_FLUX+DIV", 0.18, 0.55}, {"REACTION_RATE", 0.20, 0.05},
      {"BOUNDARY+FILTER", 0.05, 0.2}};
  s3d::perf::ClusterModel model(shares, 55e-6);

  s3d::Table t({"proportion XT4", "avg cost [us/pt/step]",
                "unbalanced hybrid [us/pt/step]"});
  for (double p = 0.0; p <= 1.0001; p += 0.1) {
    t.add_row({s3d::Table::num(p, 2),
               s3d::Table::num(model.balanced_cost(p) * 1e6, 4),
               s3d::Table::num(model.hybrid_cost(p) * 1e6, 4)});
  }
  t.print(std::cout);
  std::printf(
      "\nAt Jaguar's configuration (46%% XT4): %.1f us/pt/step predicted\n"
      "(paper: ~61 us). Balancing recovers the straight line between the\n"
      "XT3-only and XT4-only rates instead of pinning at the XT3 rate.\n",
      model.balanced_cost(0.46) * 1e6);
  return 0;
}
