// Figure 9: S3D-I/O checkpoint benchmark -- write bandwidth and file-open
// time for ten checkpoints with four strategies on two simulated parallel
// filesystems (see DESIGN.md substitutions; parameters calibrated to the
// paper's Tungsten/Lustre and Mercury/GPFS systems).
//
// Paper findings this table reproduces:
//  - MPI-I/O caching outperforms native collective I/O on both systems
//    (lock-boundary alignment removes false sharing);
//  - Fortran file-per-process is fastest on Lustre, but its open cost
//    explodes on GPFS as process count grows (the MDS serializes opens),
//    letting caching overtake it at 64-128 processes;
//  - two-stage write-behind beats caching on Lustre (no coherence
//    traffic). NOTE: the paper additionally observed write-behind falling
//    below native collective on GPFS; our model keeps write-behind close
//    to caching there instead (see EXPERIMENTS.md for the discussion).

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "iosim/simfs.hpp"
#include "iosim/writers.hpp"

namespace io = s3d::iosim;

namespace {

io::CheckpointSpec spec_for(int nprocs) {
  io::CheckpointSpec s;
  s.nx = s.ny = s.nz = 50;  // paper: 50^3 per process, ~15.26 MB each
  switch (nprocs) {
    case 8: s.px = 2; s.py = 2; s.pz = 2; break;
    case 16: s.px = 4; s.py = 2; s.pz = 2; break;
    case 32: s.px = 4; s.py = 4; s.pz = 2; break;
    case 64: s.px = 4; s.py = 4; s.pz = 4; break;
    default: s.px = 8; s.py = 4; s.pz = 4; break;  // 128
  }
  return s;
}

using Writer = io::WriteResult (*)(io::SimFS&, const io::CheckpointSpec&,
                                   const io::NetParams&, int, double);

struct Run {
  double bw_mbs;      ///< total bytes / (open + write) over 10 checkpoints
  double open_s;      ///< cumulative open time
};

Run run10(Writer w, const io::FsParams& fsp, const io::NetParams& net,
          const io::CheckpointSpec& spec) {
  io::SimFS fs(fsp);
  double t = 0.0, wt = 0.0, ot = 0.0;
  const int n_ckpt = 10;
  for (int c = 0; c < n_ckpt; ++c) {
    auto r = w(fs, spec, net, c, t);
    t += r.open_time + r.write_time;
    wt += r.write_time;
    ot += r.open_time;
  }
  return {spec.total_bytes() * n_ckpt / (wt + ot) / 1e6, ot};
}

}  // namespace

int main() {
  s3dpp_bench::banner("Figure 9",
                      "S3D-I/O write bandwidth and file-open time");

  struct Machine {
    const char* name;
    io::FsParams fs;
    io::NetParams net;
  };
  const Machine machines[] = {
      {"Tungsten (Lustre-like)", io::lustre_like(), {110e6, 1e-4}},
      {"Mercury (GPFS-like)", io::gpfs_like(), {30e6, 6e-5}},
  };

  for (const auto& m : machines) {
    std::printf("\n--- %s: %d servers, %zu kB stripes ---\n", m.name,
                m.fs.n_servers, m.fs.stripe_size / 1024);
    s3d::Table bw({"procs", "Fortran [MB/s]", "native coll [MB/s]",
                   "MPI-I/O caching [MB/s]", "write-behind [MB/s]"});
    s3d::Table op({"procs", "Fortran open [s]", "native open [s]",
                   "caching open [s]", "write-behind open [s]"});
    for (int np : {8, 16, 32, 64, 128}) {
      const auto spec = spec_for(np);
      const Run rf = run10(io::write_fortran, m.fs, m.net, spec);
      const Run rn = run10(io::write_native_collective, m.fs, m.net, spec);
      const Run rc = run10(io::write_mpiio_caching, m.fs, m.net, spec);
      const Run rw = run10(io::write_write_behind, m.fs, m.net, spec);
      bw.add_row({std::to_string(np), s3d::Table::num(rf.bw_mbs, 4),
                  s3d::Table::num(rn.bw_mbs, 4), s3d::Table::num(rc.bw_mbs, 4),
                  s3d::Table::num(rw.bw_mbs, 4)});
      op.add_row({std::to_string(np), s3d::Table::num(rf.open_s, 3),
                  s3d::Table::num(rn.open_s, 3), s3d::Table::num(rc.open_s, 3),
                  s3d::Table::num(rw.open_s, 3)});
    }
    std::printf("Write bandwidth, 10 checkpoints (50^3/proc, 16 scalars):\n");
    bw.print(std::cout);
    std::printf("\nFile-open time for 10 checkpoints:\n");
    op.print(std::cout);
  }

  std::printf(
      "\nPaper fig. 9 shape checks:\n"
      " - caching > native collective on BOTH filesystems (alignment);\n"
      " - Fortran opens scale ~linearly with nprocs and are ~15x costlier\n"
      "   per open on the GPFS-like MDS -> the open-time blow-up at 128;\n"
      " - on Lustre: write-behind > caching (no coherence-control\n"
      "   round-trips); shared-file opens stay flat at 10 opens total.\n");
  return 0;
}
