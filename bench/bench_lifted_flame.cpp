// Lifted H2/N2 jet flame in heated coflow (paper section 6) -- regenerates
// figures 10, 11, 14 and 15 from one scaled-down 2-D DNS (DESIGN.md sizing
// policy; S3DPP_FULL=1 enlarges the run):
//
//   fig. 10/14: fused volume renderings of OH and HO2 and of the
//               stoichiometric mixture-fraction isosurface (PPM files in
//               the bench output directory), plus the quantitative marker:
//               HO2 accumulates UPSTREAM of OH at the flame base;
//   fig. 11:    scatter statistics of T vs mixture fraction at axial
//               stations -- ignition starts on the fuel-LEAN side and the
//               peak walks toward richer mixtures downstream;
//   fig. 15:    trispace data -- time histogram of OH, parallel
//               coordinates of (Z, chi, OH), and the negative spatial
//               correlation of chi and OH near the stoichiometric
//               isosurface.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "solver/cases.hpp"
#include "solver/diagnostics.hpp"
#include "solver/solver.hpp"
#include "viz/render.hpp"
#include "viz/trispace.hpp"

namespace sv = s3d::solver;
namespace viz = s3d::viz;

int main() {
  using s3dpp_bench::banner;
  banner("Figures 10/11/14/15",
         "lifted H2/N2 jet flame in autoignitive heated coflow");
  const bool full = s3dpp_bench::full_mode();
  const std::string out = s3dpp_bench::out_dir();

  sv::LiftedJetParams prm;
  prm.nx = full ? 240 : 96;
  prm.ny = full ? 180 : 80;
  prm.Lx = full ? 0.012 : 0.0072;
  prm.Ly = full ? 0.012 : 0.0072;
  prm.slot_h = 0.0009;
  prm.u_jet = 130.0;
  prm.u_coflow = 6.0;
  prm.u_rms = 14.0;
  prm.turb_len = 0.00045;
  prm.transport = sv::TransportModel::power_law;
  auto cs = sv::lifted_jet_case(prm);
  const auto& mech = *cs.cfg.mech;

  sv::Solver s(cs.cfg);
  s.initialize(cs.init);
  const double t_end = full ? 4.5e-4 : 2.1e-4;
  const double t_stats = 0.55 * t_end;  // statistics window start

  std::printf("Domain %gx%g mm, %dx%d points, jet %g m/s into %g K coflow\n",
              prm.Lx * 1e3, prm.Ly * 1e3, prm.nx, prm.ny, prm.u_jet,
              prm.T_coflow);
  std::printf("Z_st = %.3f (65%% H2 / 35%% N2 into air)\n\n", cs.Z_st);

  const int ioh = mech.index("OH"), iho2 = mech.index("HO2");
  const auto& l = s.layout();

  // fig. 11 stations and accumulators: conditional mean/std of T on Z.
  const double stations[4] = {0.125, 0.25, 0.5, 0.75};
  std::vector<sv::ConditionalStats> T_on_Z(
      4, sv::ConditionalStats(0.0, 1.0, 25));
  viz::TimeHistogram oh_hist(0.0, 0.02, 40);

  s3d::Timer wall;
  int snaps = 0;
  const int sample_every = 60;
  while (s.time() < t_end) {
    s.run(sample_every, {}, 10);
    auto& prim = s.primitives();
    auto Z = sv::mixture_fraction_field(mech, prim, l, cs.Y_ox, cs.Y_fuel);
    oh_hist.add_snapshot(prim.Y[ioh]);
    ++snaps;
    if (s.time() >= t_stats) {
      for (int st = 0; st < 4; ++st) {
        const int i = std::min(static_cast<int>(stations[st] * l.nx),
                               l.nx - 1);
        for (int j = 0; j < l.ny; ++j)
          T_on_Z[st].add(Z(i, j, 0), prim.T(i, j, 0));
      }
    }
  }
  std::printf("Simulated %.0f us in %d steps (%.1f s wall, %d snapshots)\n\n",
              s.time() * 1e6, s.steps_taken(), wall.seconds(), snaps);

  // ---- Figure 11 table ----
  auto& prim = s.primitives();
  auto Z = sv::mixture_fraction_field(mech, prim, l, cs.Y_ox, cs.Y_fuel);
  std::printf("Figure 11: conditional mean (std) of T [K] vs mixture "
              "fraction Z\n");
  s3d::Table t11({"Z bin", "x/L=1/8", "x/L=1/4", "x/L=1/2", "x/L=3/4"});
  for (int b = 0; b < 25; ++b) {
    if (T_on_Z[0].count(b) + T_on_Z[1].count(b) + T_on_Z[2].count(b) +
            T_on_Z[3].count(b) ==
        0)
      continue;
    std::vector<std::string> row{s3d::Table::num(T_on_Z[0].bin_center(b), 3)};
    for (int st = 0; st < 4; ++st) {
      if (T_on_Z[st].count(b) < 3) {
        row.push_back("-");
      } else {
        row.push_back(s3d::Table::num(T_on_Z[st].mean(b), 4) + " (" +
                      s3d::Table::num(T_on_Z[st].stddev(b), 3) + ")");
      }
    }
    t11.add_row(row);
  }
  t11.print(std::cout);

  // Shape check: where is conditional T elevated vs the frozen mixing
  // line? Find the Z of peak conditional mean T per station.
  std::printf("\nZ at peak conditional T per station (ignition walks from "
              "lean toward Z_st=%.2f):\n", cs.Z_st);
  for (int st = 0; st < 4; ++st) {
    double best = 0.0;
    double zb = 0.0;
    for (int b = 0; b < 25; ++b)
      if (T_on_Z[st].count(b) >= 3 && T_on_Z[st].mean(b) > best) {
        best = T_on_Z[st].mean(b);
        zb = T_on_Z[st].bin_center(b);
      }
    std::printf("  x/L=%-5.3f  Z_peak=%.3f  T_peak=%.0f K\n", stations[st],
                zb, best);
  }

  // ---- Figure 10 marker: HO2 upstream of OH ----
  auto centroid_x = [&](const sv::GField& f) {
    double num = 0.0, den = 0.0;
    for (int j = 0; j < l.ny; ++j)
      for (int i = 0; i < l.nx; ++i) {
        num += f(i, j, 0) * s.coord(0, i);
        den += f(i, j, 0);
      }
    return den > 0 ? num / den : 0.0;
  };
  const double x_ho2 = centroid_x(prim.Y[iho2]);
  const double x_oh = centroid_x(prim.Y[ioh]);
  std::printf(
      "\nFigure 10 marker: HO2 mass centroid x = %.2f mm, OH centroid x = "
      "%.2f mm\n  -> HO2 accumulates %s of OH (paper: upstream, the "
      "autoignition precursor)\n",
      x_ho2 * 1e3, x_oh * 1e3, x_ho2 < x_oh ? "UPSTREAM" : "downstream");

  // ---- Figures 10/14 renderings ----
  double oh_max = 0.0, ho2_max = 0.0;
  for (int j = 0; j < l.ny; ++j)
    for (int i = 0; i < l.nx; ++i) {
      oh_max = std::max(oh_max, prim.Y[ioh](i, j, 0));
      ho2_max = std::max(ho2_max, prim.Y[iho2](i, j, 0));
    }
  viz::TransferFunction tf_oh;
  tf_oh.lo = 0.0;
  tf_oh.hi = std::max(oh_max, 1e-8);
  tf_oh.color = viz::colormap_hot;
  tf_oh.opacity = 0.9;
  viz::TransferFunction tf_ho2 = tf_oh;
  tf_ho2.hi = std::max(ho2_max, 1e-9);
  tf_ho2.color = viz::colormap_cool;
  viz::TransferFunction tf_ziso;
  tf_ziso.iso = cs.Z_st;
  tf_ziso.iso_width = 0.02;
  tf_ziso.opacity = 0.8;
  tf_ziso.color = [](double) { return viz::Rgb{0.85, 0.7, 0.2}; };  // gold

  viz::VolumeRenderer vr(2);
  vr.render({{&prim.Y[ioh], tf_oh}, {&prim.Y[iho2], tf_ho2}}, 4)
      .write_ppm(out + "/fig10_oh_ho2.ppm");
  vr.render({{&Z, tf_ziso}, {&prim.Y[iho2], tf_ho2}}, 4)
      .write_ppm(out + "/fig14_zst_ho2.ppm");
  vr.render({{&Z, tf_ziso}, {&prim.Y[ioh], tf_oh}}, 4)
      .write_ppm(out + "/fig14_zst_oh.ppm");
  viz::render_slice(prim.T, 300.0, 2400.0, viz::colormap_hot, 4)
      .write_ppm(out + "/fig10_temperature.ppm");
  std::printf("\nWrote fig10_oh_ho2.ppm, fig14_zst_ho2.ppm, fig14_zst_oh.ppm,"
              "\nfig10_temperature.ppm to %s/\n", out.c_str());

  // ---- Figure 15: trispace ----
  // chi proxy: |grad Z|^2 (scalar dissipation without the diffusivity).
  auto gZ = sv::gradient_magnitude(s.rhs().ops(), Z);
  sv::GField chi(l);
  double chi_max = 0.0;
  for (int j = 0; j < l.ny; ++j)
    for (int i = 0; i < l.nx; ++i) {
      const double g = gZ(i, j, 0);
      chi(i, j, 0) = g * g;
      chi_max = std::max(chi_max, chi(i, j, 0));
    }
  viz::ParallelCoords pc({{"Z", &Z, 0.0, 1.0},
                          {"chi", &chi, 0.0, chi_max + 1e-300},
                          {"OH", &prim.Y[ioh], 0.0, std::max(oh_max, 1e-8)}},
                         48);
  pc.accumulate();
  pc.render().write_ppm(out + "/fig15_parallel_coords.ppm");
  oh_hist.render().write_ppm(out + "/fig15_time_histogram.ppm");

  const double corr = viz::masked_correlation(
      chi, prim.Y[ioh], viz::near_iso_mask(Z, cs.Z_st, 0.05));
  std::printf(
      "\nFigure 15: correlation(chi, OH) near the Z_st isosurface = %.3f\n"
      "  (paper: negative -- high mixing rates suppress OH)\n"
      "Wrote fig15_parallel_coords.ppm, fig15_time_histogram.ppm\n",
      corr);
  return 0;
}
