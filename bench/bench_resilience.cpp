// Resilience overhead sweep (DESIGN.md "Resilience" + §12), two parts:
//
//   1. checkpoint interval vs injected failure rate for the run_resilient
//      driver: attempts, recoveries, wall time, overhead over the
//      fault-free run, and MTTR (overhead amortised over recoveries);
//   2. checkpoint-store mode A/B on the step path: the per-write cost of
//      RestartSeries::write under (a) synchronous full-copy generations
//      (the pre-store behaviour), (b) synchronous block deltas, and
//      (c) deltas behind the write-behind persister, plus bytes per
//      generation and the dedup ratio.
//
// Both parts land in BENCH_resilience.json (mttr_ms, the three per-write
// costs, bytes/generation, dedup ratio, persist-queue high-water mark) so
// CI can track the step-time checkpoint overhead without scraping stdout.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "chem/mechanisms.hpp"
#include "resilience/fault.hpp"
#include "solver/checkpoint.hpp"
#include "solver/resilient.hpp"
#include "solver/solver.hpp"

namespace sv = s3d::solver;
namespace chem = s3d::chem;
namespace fault = s3d::fault;

namespace {

sv::Config bench_cfg() {
  sv::Config cfg;
  static auto mech =
      std::make_shared<const chem::Mechanism>(chem::air_inert());
  cfg.mech = mech;
  cfg.x = {24, 0.01, true};
  cfg.y = {12, 0.01, true};
  cfg.z = {1, 1.0, false};
  for (int a = 0; a < 3; ++a)
    for (auto& f : cfg.faces[a]) f.kind = sv::BcKind::periodic;
  cfg.transport = sv::TransportModel::power_law;
  return cfg;
}

void quiescent_init(double, double, double, sv::InflowState& st, double& p) {
  st.u = 2.0;
  st.v = 0.5;
  st.w = 0.0;
  st.T = 300.0;
  st.Y.fill(0.0);
  st.Y[0] = 0.233;
  st.Y[1] = 0.767;
  p = 101325.0;
}

// Non-degenerate initial condition for the store A/B: every cell moves
// every step, so delta generations are full-dirty — the honest worst
// case for the codec (a quiescent state would make deltas trivially
// empty and flatter the store).
void wavy_init(double x, double y, double z, sv::InflowState& st, double& p) {
  st.u = 3.0 * std::sin(2 * 3.14159265358979 * x / 0.01);
  st.v = 1.0 * std::cos(2 * 3.14159265358979 * y / 0.01);
  st.w = 0.5 * std::sin(2 * 3.14159265358979 * z / 0.01);
  st.T = 300.0 + 8.0 * std::sin(2 * 3.14159265358979 * (x + y) / 0.01);
  st.Y.fill(0.0);
  st.Y[0] = 0.233;
  st.Y[1] = 0.767;
  p = 101325.0;
}

struct Cell {
  double wall_ms = 0.0;
  int attempts = 0;
  int recoveries = 0;
  bool ok = false;
};

struct CkptMode {
  const char* name = "";
  double median_write_ms = 0.0;  ///< step-path cost of one series.write
  double bytes_per_gen = 0.0;
  double dedup_ratio = 1.0;
  int queue_hwm = 0;
};

CkptMode bench_ckpt_mode(const char* name, const sv::Config& cfg, int ngens,
                         const sv::CkptOptions& opt, const std::string& dir) {
  namespace fs = std::filesystem;
  fs::remove_all(dir);
  fs::create_directories(dir);

  sv::Solver s(cfg);
  s.initialize(wavy_init);
  CkptMode m;
  m.name = name;
  std::vector<double> per_write;
  {
    sv::RestartSeries series(dir, "ckpt", /*keep_last=*/4, opt);
    for (int g = 1; g <= ngens; ++g) {
      s.run(1);
      const auto t0 = std::chrono::steady_clock::now();
      series.write(s, g);
      const auto t1 = std::chrono::steady_clock::now();
      per_write.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    series.drain();
    const auto st = series.stats();
    m.bytes_per_gen = static_cast<double>(st.written_bytes) / ngens;
    m.dedup_ratio = st.dedup_ratio();
    m.queue_hwm = st.queue_hwm;
  }
  m.median_write_ms = s3dpp_bench::median(per_write);
  fs::remove_all(dir);
  return m;
}

Cell run_cell(const sv::Config& cfg, int nsteps, int interval, double p_fail,
              const std::string& dir) {
  namespace fs = std::filesystem;
  fs::remove_all(dir);
  fs::create_directories(dir);

  fault::set_seed(0x5eedU + interval * 131 +
                  static_cast<unsigned>(p_fail * 1e4));
  if (p_fail > 0.0)
    fault::arm({.site = "solver.step",
                .kind = fault::Kind::fail,
                .nth = -1,
                .probability = p_fail,
                .max_fires = -1});

  sv::ResilienceConfig rc;
  rc.dir = dir;
  rc.checkpoint_every = interval;
  rc.keep_last = 2;
  rc.max_attempts = 200;

  sv::Solver s(cfg);
  Cell cell;
  const auto t0 = std::chrono::steady_clock::now();
  const auto rep = sv::run_resilient(s, quiescent_init, nsteps, rc);
  const auto t1 = std::chrono::steady_clock::now();
  fault::reset();
  fs::remove_all(dir);

  cell.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  cell.attempts = rep.attempts;
  cell.recoveries = rep.recoveries;
  cell.ok = rep.succeeded;
  return cell;
}

}  // namespace

int main() {
  using s3dpp_bench::banner;
  using s3dpp_bench::full_mode;
  using s3dpp_bench::out_dir;

  banner("bench_resilience",
         "checkpoint interval vs failure rate (MTTR) + store mode A/B");
#ifdef S3D_FAULTS_DISABLED
  std::printf("fault injection compiled out (S3D_FAULTS_DISABLED); the\n"
              "failure-rate axis degenerates to p=0.\n\n");
#endif

  const auto cfg = bench_cfg();
  const int nsteps = full_mode() ? 120 : 40;
  const int intervals[] = {2, 5, 10};
  const double rates[] = {0.0, 0.01, 0.03};
  const std::string dir = out_dir() + "/resilience_ckpt";

  std::printf("nsteps=%d (grid 24x12, air_inert)\n\n", nsteps);
  std::printf("%-10s %-8s %-9s %-11s %-10s %-10s %-9s\n", "interval",
              "p_fail", "attempts", "recoveries", "wall_ms", "overhead",
              "MTTR_ms");

  double mttr_overhead_ms = 0.0;
  long mttr_recoveries = 0;
  for (int interval : intervals) {
    const Cell clean = run_cell(cfg, nsteps, interval, 0.0, dir);
    for (double p : rates) {
      const Cell c =
          p == 0.0 ? clean : run_cell(cfg, nsteps, interval, p, dir);
      const double overhead = c.wall_ms - clean.wall_ms;
      std::printf("%-10d %-8.2f %-9d %-11d %-10.1f %-10.1f ", interval, p,
                  c.attempts, c.recoveries, c.wall_ms,
                  p == 0.0 ? 0.0 : overhead);
      if (!c.ok)
        std::printf("budget exhausted\n");
      else if (c.recoveries > 0)
        std::printf("%-9.1f\n", overhead / c.recoveries);
      else
        std::printf("-\n");
      if (p > 0.0 && c.ok && c.recoveries > 0 && overhead > 0.0) {
        mttr_overhead_ms += overhead;
        mttr_recoveries += c.recoveries;
      }
    }
  }
  std::printf("\nMTTR = (faulty wall - fault-free wall at the same "
              "interval) / recoveries.\n");

  // --- part 2: checkpoint-store mode A/B on the step path ---------------
  std::printf("\ncheckpoint store: per-write step-path cost over %d "
              "generations (wavy state, full-dirty deltas)\n\n",
              nsteps);
  std::printf("%-16s %-14s %-14s %-12s %-10s\n", "mode", "write_ms(med)",
              "bytes/gen", "dedup", "queue_hwm");

  sv::CkptOptions full_sync;
  full_sync.delta = false;
  sv::CkptOptions delta_sync;
  delta_sync.delta = true;
  delta_sync.base_every = 4;
  sv::CkptOptions delta_wb = delta_sync;
  delta_wb.write_behind = true;

  const CkptMode modes[] = {
      bench_ckpt_mode("full-sync", cfg, nsteps, full_sync, dir),
      bench_ckpt_mode("delta-sync", cfg, nsteps, delta_sync, dir),
      bench_ckpt_mode("delta-wb", cfg, nsteps, delta_wb, dir),
  };
  for (const auto& m : modes)
    std::printf("%-16s %-14.4f %-14.0f %-12.3f %-10d\n", m.name,
                m.median_write_ms, m.bytes_per_gen, m.dedup_ratio,
                m.queue_hwm);
  std::printf("\nfull-sync is the pre-store behaviour (every generation a "
              "synchronous full copy); delta-wb is the delta store with "
              "the write-behind persister (the step path pays encode + "
              "enqueue only).\n");

  // The grid is fixed, so per-cell normalisation uses the A/B case size.
  const double cells = 24.0 * 12.0;
  s3dpp_bench::BenchResult r;
  r.name = "resilience";
  r.median_ns_per_cell_step = modes[2].median_write_ms * 1e6 / cells;
  r.passes = nsteps;
  r.extra = {
      {"mttr_ms",
       mttr_recoveries > 0 ? mttr_overhead_ms / mttr_recoveries : 0.0},
      {"ckpt_full_sync_write_ms", modes[0].median_write_ms},
      {"ckpt_delta_sync_write_ms", modes[1].median_write_ms},
      {"ckpt_delta_wb_write_ms", modes[2].median_write_ms},
      {"ckpt_bytes_per_gen_full", modes[0].bytes_per_gen},
      {"ckpt_bytes_per_gen_delta", modes[1].bytes_per_gen},
      {"ckpt_dedup_ratio_delta", modes[1].dedup_ratio},
      {"ckpt_persist_queue_hwm", static_cast<double>(modes[2].queue_hwm)},
  };
  s3dpp_bench::write_bench_json(r);
  return 0;
}
