// Resilience overhead sweep (DESIGN.md "Resilience"): checkpoint interval
// vs injected failure rate for the run_resilient driver. For each cell we
// run a small 2-D case to completion under seeded solver.step failures and
// report attempts, recoveries, wall time, the overhead over the fault-free
// run at the same interval, and MTTR (mean time to repair = overhead
// amortised over the recoveries that incurred it). The sweep shows the
// classic trade-off: frequent checkpoints cost steady-state I/O but bound
// the work lost per failure.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "chem/mechanisms.hpp"
#include "resilience/fault.hpp"
#include "solver/resilient.hpp"
#include "solver/solver.hpp"

namespace sv = s3d::solver;
namespace chem = s3d::chem;
namespace fault = s3d::fault;

namespace {

sv::Config bench_cfg() {
  sv::Config cfg;
  static auto mech =
      std::make_shared<const chem::Mechanism>(chem::air_inert());
  cfg.mech = mech;
  cfg.x = {24, 0.01, true};
  cfg.y = {12, 0.01, true};
  cfg.z = {1, 1.0, false};
  for (int a = 0; a < 3; ++a)
    for (auto& f : cfg.faces[a]) f.kind = sv::BcKind::periodic;
  cfg.transport = sv::TransportModel::power_law;
  return cfg;
}

void quiescent_init(double, double, double, sv::InflowState& st, double& p) {
  st.u = 2.0;
  st.v = 0.5;
  st.w = 0.0;
  st.T = 300.0;
  st.Y.fill(0.0);
  st.Y[0] = 0.233;
  st.Y[1] = 0.767;
  p = 101325.0;
}

struct Cell {
  double wall_ms = 0.0;
  int attempts = 0;
  int recoveries = 0;
  bool ok = false;
};

Cell run_cell(const sv::Config& cfg, int nsteps, int interval, double p_fail,
              const std::string& dir) {
  namespace fs = std::filesystem;
  fs::remove_all(dir);
  fs::create_directories(dir);

  fault::set_seed(0x5eedU + interval * 131 +
                  static_cast<unsigned>(p_fail * 1e4));
  if (p_fail > 0.0)
    fault::arm({.site = "solver.step",
                .kind = fault::Kind::fail,
                .nth = -1,
                .probability = p_fail,
                .max_fires = -1});

  sv::ResilienceConfig rc;
  rc.dir = dir;
  rc.checkpoint_every = interval;
  rc.keep_last = 2;
  rc.max_attempts = 200;

  sv::Solver s(cfg);
  Cell cell;
  const auto t0 = std::chrono::steady_clock::now();
  const auto rep = sv::run_resilient(s, quiescent_init, nsteps, rc);
  const auto t1 = std::chrono::steady_clock::now();
  fault::reset();
  fs::remove_all(dir);

  cell.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  cell.attempts = rep.attempts;
  cell.recoveries = rep.recoveries;
  cell.ok = rep.succeeded;
  return cell;
}

}  // namespace

int main() {
  using s3dpp_bench::banner;
  using s3dpp_bench::full_mode;
  using s3dpp_bench::out_dir;

  banner("bench_resilience",
         "checkpoint interval vs failure rate (run_resilient, MTTR)");
#ifdef S3D_FAULTS_DISABLED
  std::printf("fault injection compiled out (S3D_FAULTS_DISABLED); the\n"
              "failure-rate axis degenerates to p=0.\n\n");
#endif

  const auto cfg = bench_cfg();
  const int nsteps = full_mode() ? 120 : 40;
  const int intervals[] = {2, 5, 10};
  const double rates[] = {0.0, 0.01, 0.03};
  const std::string dir = out_dir() + "/resilience_ckpt";

  std::printf("nsteps=%d (grid 24x12, air_inert)\n\n", nsteps);
  std::printf("%-10s %-8s %-9s %-11s %-10s %-10s %-9s\n", "interval",
              "p_fail", "attempts", "recoveries", "wall_ms", "overhead",
              "MTTR_ms");

  for (int interval : intervals) {
    const Cell clean = run_cell(cfg, nsteps, interval, 0.0, dir);
    for (double p : rates) {
      const Cell c =
          p == 0.0 ? clean : run_cell(cfg, nsteps, interval, p, dir);
      const double overhead = c.wall_ms - clean.wall_ms;
      std::printf("%-10d %-8.2f %-9d %-11d %-10.1f %-10.1f ", interval, p,
                  c.attempts, c.recoveries, c.wall_ms,
                  p == 0.0 ? 0.0 : overhead);
      if (!c.ok)
        std::printf("budget exhausted\n");
      else if (c.recoveries > 0)
        std::printf("%-9.1f\n", overhead / c.recoveries);
      else
        std::printf("-\n");
    }
  }
  std::printf("\nMTTR = (faulty wall - fault-free wall at the same "
              "interval) / recoveries.\n");
  return 0;
}
