// Fused-pass + batched-kernel A/B/C harness (DESIGN.md §10, §11).
//
// Runs the same lifted-flame step loop in three modes:
//   - unfused:       per-variable sweeps, per-point kernels (reference),
//   - fused:         fused pass plan, per-point kernels,
//   - fused+batched: fused pass plan, SoA row-batched chem/transport.
// The modes advance in interleaved blocks (a few steps of each, round
// robin) rather than back to back, so slow machine-load drift on a
// shared box hits all three equally and the A/B deltas stay meaningful;
// per-mode numbers are medians across the blocks. Reports, per mode:
//   - the median wall time per step (and per cell-step in ns),
//   - the number of grid sweeps per step from the pass-plan accounting
//     (Solver::pass_stats + RhsEvaluator::pass_stats),
//   - the chemistry and transport share of RHS time (RhsTimers), the
//     profile the paper's fig. 2 reports per kernel,
//   - an FNV-1a checksum of the final conserved state.
//
// Acceptance (enforced in-run, nonzero exit on failure):
//   - the fused plans execute strictly fewer sweeps per step,
//   - all three final states are bitwise identical (the fusion AND
//     batching contracts; ctest -L equivalence pins the same properties
//     on randomized states, the golden suite on seeded records),
// and batched should be no slower than fused per-point — reported here,
// asserted only under S3DPP_BENCH_STRICT=1 since wall-clock on shared
// CI boxes is noisy.
//
// Results are written machine-readably to BENCH_fusion_off.json /
// BENCH_fusion_on.json / BENCH_fusion_batched.json, each carrying
// chem_share / transport_share keys.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/hash.hpp"
#include "solver/cases.hpp"
#include "solver/solver.hpp"

namespace sv = s3d::solver;

namespace {

struct ModeResult {
  double median_step_ms = 0.0;
  double sweeps_per_step = 0.0;
  long total_sweeps = 0;
  long stages = 0;
  double chem_share = 0.0;       ///< reaction_rate / total RHS time
  double transport_share = 0.0;  ///< diffusive_flux / total RHS time
  double chem_ms_per_step = 0.0;
  double transport_ms_per_step = 0.0;
  std::string checksum;
};

sv::CaseSetup flame_case() {
  sv::LiftedJetParams p;
  p.nx = s3dpp_bench::full_mode() ? 64 : 32;
  p.ny = s3dpp_bench::full_mode() ? 48 : 24;
  return sv::lifted_jet_case(p);
}

/// One mode's live solver plus its per-block samples.
struct ModeRun {
  bool fusion = false;
  bool batching = false;
  std::unique_ptr<sv::Solver> s;
  std::vector<double> step_ms;
  std::vector<double> chem_block_ms;       ///< chem ms/step, one per block
  std::vector<double> transport_block_ms;  ///< transport ms/step per block
};

ModeRun make_mode(const sv::CaseSetup& setup, bool fusion, bool batching,
                  int warmup) {
  ModeRun m;
  m.fusion = fusion;
  m.batching = batching;
  sv::Config cfg = setup.cfg;
  cfg.fusion = fusion;
  cfg.batching = batching;
  m.s = std::make_unique<sv::Solver>(cfg);
  m.s->initialize(setup.init);
  m.s->run(warmup);
  m.s->reset_pass_stats();
  m.s->rhs().reset_pass_stats();
  m.s->rhs().reset_timers();
  return m;
}

/// Advance one block of steps, recording per-step wall time and the
/// block's chemistry / transport RHS-timer deltas.
void run_block(ModeRun& m, int block) {
  const sv::RhsTimers before = m.s->rhs().timers();
  for (int n = 0; n < block; ++n) {
    const auto t0 = std::chrono::steady_clock::now();
    m.s->run(1);
    const auto t1 = std::chrono::steady_clock::now();
    m.step_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  const sv::RhsTimers& after = m.s->rhs().timers();
  m.chem_block_ms.push_back(
      1e3 * (after.reaction_rate - before.reaction_rate) / block);
  m.transport_block_ms.push_back(
      1e3 * (after.diffusive_flux - before.diffusive_flux) / block);
}

ModeResult finish_mode(ModeRun& m, int nsteps) {
  ModeResult r;
  sv::Solver& s = *m.s;
  r.median_step_ms = s3dpp_bench::median(m.step_ms);
  r.total_sweeps = s.pass_stats().sweeps + s.rhs().pass_stats().sweeps;
  r.stages = s.pass_stats().stages + s.rhs().pass_stats().stages;
  r.sweeps_per_step = static_cast<double>(r.total_sweeps) / nsteps;

  const sv::RhsTimers& t = s.rhs().timers();
  const double total = t.primitives + t.halo + t.gradients +
                       t.transport_props + t.diffusive_flux +
                       t.reaction_rate + t.convective + t.boundary;
  if (total > 0.0) {
    r.chem_share = t.reaction_rate / total;
    r.transport_share = t.diffusive_flux / total;
  }
  r.chem_ms_per_step = s3dpp_bench::median(m.chem_block_ms);
  r.transport_ms_per_step = s3dpp_bench::median(m.transport_block_ms);

  const auto flat = s.state().flat();
  r.checksum = s3d::hex64(
      s3d::fnv1a64(flat.data(), flat.size() * sizeof(double)));
  return r;
}

}  // namespace

int main() {
  using s3dpp_bench::banner;
  using s3dpp_bench::full_mode;

  banner("bench_fusion",
         "fused / batched pass plans on the lifted-flame step loop");

  const auto setup = flame_case();
  const int rounds = full_mode() ? 10 : 8;
  const int block = full_mode() ? 4 : 2;
  const int nsteps = rounds * block;
  const int warmup = 3;
  const double cells =
      static_cast<double>(setup.cfg.x.n) * setup.cfg.y.n * setup.cfg.z.n;
  std::printf("grid %dx%d, %d timed steps (+%d warmup) per mode, "
              "interleaved in %d rounds of %d, H2/air chem\n\n",
              setup.cfg.x.n, setup.cfg.y.n, nsteps, warmup, rounds, block);

  ModeRun runs[] = {make_mode(setup, false, false, warmup),
                    make_mode(setup, true, false, warmup),
                    make_mode(setup, true, true, warmup)};
  for (int round = 0; round < rounds; ++round)
    for (ModeRun& m : runs) run_block(m, block);

  const ModeResult off = finish_mode(runs[0], nsteps);
  const ModeResult on = finish_mode(runs[1], nsteps);
  const ModeResult bat = finish_mode(runs[2], nsteps);

  struct Row {
    const char* label;
    const char* json_name;
    const ModeResult* r;
  };
  const Row rows[] = {{"unfused", "fusion_off", &off},
                      {"fused", "fusion_on", &on},
                      {"fused+batch", "fusion_batched", &bat}};

  std::printf("%-12s %13s %11s %7s %6s %6s  %s\n", "mode", "median ms/step",
              "sweeps/step", "stages", "chem%", "trans%", "state checksum");
  for (const Row& row : rows)
    std::printf("%-12s %13.3f %11.1f %7ld %5.1f%% %5.1f%%  %s\n", row.label,
                row.r->median_step_ms, row.r->sweeps_per_step, row.r->stages,
                100.0 * row.r->chem_share, 100.0 * row.r->transport_share,
                row.r->checksum.c_str());
  std::printf("\nsweeps saved by fusion: %.1f/step (%.0f%%)\n",
              off.sweeps_per_step - on.sweeps_per_step,
              100.0 * (off.sweeps_per_step - on.sweeps_per_step) /
                  off.sweeps_per_step);
  std::printf("batching vs fused per-point: step %+.2f%%, chem %+.2f%%, "
              "transport %+.2f%%\n",
              100.0 * (bat.median_step_ms - on.median_step_ms) /
                  on.median_step_ms,
              100.0 * (bat.chem_ms_per_step - on.chem_ms_per_step) /
                  on.chem_ms_per_step,
              100.0 * (bat.transport_ms_per_step - on.transport_ms_per_step) /
                  on.transport_ms_per_step);

  for (const Row& row : rows) {
    const ModeResult& r = *row.r;
    s3dpp_bench::BenchResult out;
    out.name = row.json_name;
    out.median_ns_per_cell_step = r.median_step_ms * 1e6 / cells;
    out.passes = r.total_sweeps;
    out.extra = {{"median_ms_per_step", r.median_step_ms},
                 {"sweeps_per_step", r.sweeps_per_step},
                 {"steps", static_cast<double>(nsteps)},
                 {"chem_share", r.chem_share},
                 {"transport_share", r.transport_share},
                 {"chem_ms_per_step", r.chem_ms_per_step},
                 {"transport_ms_per_step", r.transport_ms_per_step}};
    s3dpp_bench::write_bench_json(out);
  }

  int rc = 0;
  if (on.total_sweeps >= off.total_sweeps) {
    std::printf("FAIL: fused plan did not reduce sweep count\n");
    rc = 1;
  }
  if (on.checksum != off.checksum || bat.checksum != off.checksum) {
    std::printf("FAIL: fused/batched final states are not bitwise identical "
                "to the unfused reference\n");
    rc = 1;
  }
  const char* strict = std::getenv("S3DPP_BENCH_STRICT");
  if (strict && strict[0] == '1') {
    if (on.median_step_ms > 1.05 * off.median_step_ms) {
      std::printf("FAIL: fused median step time regressed beyond 5%%\n");
      rc = 1;
    }
    if (bat.median_step_ms > 1.05 * on.median_step_ms) {
      std::printf("FAIL: batched median step time regressed beyond 5%% of "
                  "fused per-point\n");
      rc = 1;
    }
  }
  if (rc == 0)
    std::printf("\nacceptance: fewer sweeps, bitwise-identical states "
                "across all three modes. OK\n");
  return rc;
}
