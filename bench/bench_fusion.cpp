// Fused-pass execution layer A/B harness (DESIGN.md §10).
//
// Runs the same lifted-flame step loop twice — Config::fusion on and
// off — and reports, for each mode:
//   - the median wall time per step (and per cell-step in ns),
//   - the number of grid sweeps per step from the pass-plan accounting
//     (Solver::pass_stats + RhsEvaluator::pass_stats),
//   - an FNV-1a checksum of the final conserved state.
//
// Acceptance (enforced in-run, nonzero exit on failure):
//   - the fused plan executes strictly fewer sweeps per step,
//   - the two final states are bitwise identical (the fusion contract;
//     the golden suite pins the same property on seeded records),
// and the fused median step time should be no worse — reported here,
// asserted only under S3DPP_BENCH_STRICT=1 since wall-clock on shared
// CI boxes is noisy.
//
// Results are also written machine-readably to BENCH_fusion_on.json /
// BENCH_fusion_off.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/hash.hpp"
#include "solver/cases.hpp"
#include "solver/solver.hpp"

namespace sv = s3d::solver;

namespace {

struct ModeResult {
  double median_step_ms = 0.0;
  double sweeps_per_step = 0.0;
  long total_sweeps = 0;
  long stages = 0;
  std::string checksum;
};

sv::CaseSetup flame_case() {
  sv::LiftedJetParams p;
  p.nx = s3dpp_bench::full_mode() ? 64 : 32;
  p.ny = s3dpp_bench::full_mode() ? 48 : 24;
  return sv::lifted_jet_case(p);
}

ModeResult run_mode(const sv::CaseSetup& setup, bool fusion, int nsteps,
                    int warmup) {
  sv::Config cfg = setup.cfg;
  cfg.fusion = fusion;
  sv::Solver s(cfg);
  s.initialize(setup.init);
  s.run(warmup);

  s.reset_pass_stats();
  s.rhs().reset_pass_stats();
  std::vector<double> step_ms;
  for (int n = 0; n < nsteps; ++n) {
    const auto t0 = std::chrono::steady_clock::now();
    s.run(1);
    const auto t1 = std::chrono::steady_clock::now();
    step_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }

  ModeResult r;
  r.median_step_ms = s3dpp_bench::median(step_ms);
  r.total_sweeps = s.pass_stats().sweeps + s.rhs().pass_stats().sweeps;
  r.stages = s.pass_stats().stages + s.rhs().pass_stats().stages;
  r.sweeps_per_step = static_cast<double>(r.total_sweeps) / nsteps;

  const auto flat = s.state().flat();
  r.checksum = s3d::hex64(
      s3d::fnv1a64(flat.data(), flat.size() * sizeof(double)));
  return r;
}

}  // namespace

int main() {
  using s3dpp_bench::banner;
  using s3dpp_bench::full_mode;

  banner("bench_fusion",
         "fused vs unfused pass plan on the lifted-flame step loop");

  const auto setup = flame_case();
  const int nsteps = full_mode() ? 40 : 12;
  const int warmup = 3;
  const double cells =
      static_cast<double>(setup.cfg.x.n) * setup.cfg.y.n * setup.cfg.z.n;
  std::printf("grid %dx%d, %d timed steps (+%d warmup), H2/air chem\n\n",
              setup.cfg.x.n, setup.cfg.y.n, nsteps, warmup);

  const ModeResult off = run_mode(setup, false, nsteps, warmup);
  const ModeResult on = run_mode(setup, true, nsteps, warmup);

  std::printf("%-10s %14s %14s %12s  %s\n", "mode", "median ms/step",
              "sweeps/step", "stages", "state checksum");
  std::printf("%-10s %14.3f %14.1f %12ld  %s\n", "unfused",
              off.median_step_ms, off.sweeps_per_step, off.stages,
              off.checksum.c_str());
  std::printf("%-10s %14.3f %14.1f %12ld  %s\n", "fused", on.median_step_ms,
              on.sweeps_per_step, on.stages, on.checksum.c_str());
  std::printf("\nsweeps saved: %.1f/step (%.0f%%), step time %+.2f%%\n",
              off.sweeps_per_step - on.sweeps_per_step,
              100.0 * (off.sweeps_per_step - on.sweeps_per_step) /
                  off.sweeps_per_step,
              100.0 * (on.median_step_ms - off.median_step_ms) /
                  off.median_step_ms);

  for (const bool fusion : {false, true}) {
    const ModeResult& r = fusion ? on : off;
    s3dpp_bench::BenchResult out;
    out.name = fusion ? "fusion_on" : "fusion_off";
    out.median_ns_per_cell_step = r.median_step_ms * 1e6 / cells;
    out.passes = r.total_sweeps;
    out.extra = {{"median_ms_per_step", r.median_step_ms},
                 {"sweeps_per_step", r.sweeps_per_step},
                 {"steps", static_cast<double>(nsteps)}};
    s3dpp_bench::write_bench_json(out);
  }

  int rc = 0;
  if (on.total_sweeps >= off.total_sweeps) {
    std::printf("FAIL: fused plan did not reduce sweep count\n");
    rc = 1;
  }
  if (on.checksum != off.checksum) {
    std::printf("FAIL: fused and unfused final states are not bitwise "
                "identical\n");
    rc = 1;
  }
  const char* strict = std::getenv("S3DPP_BENCH_STRICT");
  if (strict && strict[0] == '1' &&
      on.median_step_ms > 1.05 * off.median_step_ms) {
    std::printf("FAIL: fused median step time regressed beyond 5%%\n");
    rc = 1;
  }
  if (rc == 0)
    std::printf("\nacceptance: fewer sweeps, bitwise-identical state. OK\n");
  return rc;
}
