// Lean premixed CH4/air slot Bunsen flames under increasing turbulence
// (paper section 7) -- regenerates Table 1, figure 12 and figure 13 from
// three scaled-down 2-D DNS (cases A/B/C at increasing u'/S_L), plus the
// section 7.2 unstrained laminar reference from the premix1d solver:
//
//   section 7.2: S_L, delta_L, delta_H, tau_f of the phi = 0.7, 800 K
//                laminar flame (paper: 1.8 m/s, 0.3 mm, 0.14 mm, 0.17 ms);
//   Table 1:     per-case parameters (Re_jet, u'/S_L, l_t/delta_L, Re_t,
//                Ka, Da) computed from the actual runs;
//   fig. 12:     flame-surface (c = 0.65) contour length per slot width --
//                wrinkling grows from case A to case C -- plus rendered
//                snapshots;
//   fig. 13:     conditional mean of |grad c| * delta_L vs c at three
//                streamwise stations against the laminar profile: flames
//                thicken from A to B, and saturate from B to C.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "chem/mechanisms.hpp"
#include "chem/mixing.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "premix1d/premix1d.hpp"
#include "solver/cases.hpp"
#include "solver/diagnostics.hpp"
#include "solver/solver.hpp"
#include "viz/render.hpp"

namespace sv = s3d::solver;
namespace chem = s3d::chem;
namespace pm = s3d::premix1d;

namespace {

struct CaseResult {
  std::string name;
  double u_prime = 0.0, lt = 0.0, Re_t = 0.0, Ka = 0.0, Da = 0.0;
  double Re_jet = 0.0;
  double mean_contour_per_h = 0.0;
  std::vector<sv::ConditionalStats> gradc_on_c;  // one per station
};

}  // namespace

int main() {
  using s3dpp_bench::banner;
  banner("Table 1 / Figures 12-13",
         "premixed CH4/air Bunsen flames under intense turbulence");
  const bool full = s3dpp_bench::full_mode();
  const std::string out = s3dpp_bench::out_dir();

  // ---- Section 7.2: unstrained laminar reference (PREMIX substitute) ----
  auto mech = chem::ch4_bfer2step();
  auto Yu = chem::premixed_fuel_air_Y(mech, "CH4", 0.7);
  pm::Options po;
  po.n = full ? 320 : 224;
  po.length = 0.012;
  po.t_max = 0.03;
  auto lam = pm::solve_premixed_flame(mech, 101325.0, 800.0, Yu, po);
  const double SL = lam.S_L, dL = lam.delta_L;
  std::printf(
      "Unstrained laminar flame, phi = 0.7, T_u = 800 K, 1 atm:\n"
      "  S_L     = %.2f m/s      (paper, detailed chemistry: 1.8)\n"
      "  delta_L = %.3f mm       (paper: 0.3)\n"
      "  delta_H = %.3f mm       (paper: 0.14)\n"
      "  delta_L/delta_H = %.2f  (paper: ~2 at 800 K preheat)\n"
      "  tau_f   = %.3f ms       (paper: 0.17)\n"
      "  T_b     = %.0f K\n\n",
      SL, dL * 1e3, lam.delta_H * 1e3, dL / lam.delta_H, lam.tau_f() * 1e3,
      lam.T_burnt);

  // Laminar |grad c| * delta_L vs c reference from the 1-D profile
  // (c from Y_O2, paper section 7.3).
  const int io2 = mech.index("O2");
  const double Yo2_u = Yu[io2];
  const double Yo2_b = lam.Y[io2].back();
  sv::ConditionalStats lam_ref(0.0, 1.0, 20);
  {
    const auto& Yo2 = lam.Y[io2];
    const double h = lam.x[1] - lam.x[0];
    for (std::size_t i = 1; i + 1 < Yo2.size(); ++i) {
      const double c = std::clamp(
          (Yo2_u - Yo2[i]) / (Yo2_u - Yo2_b), 0.0, 1.0);
      const double gc =
          std::abs(Yo2[i + 1] - Yo2[i - 1]) / (2 * h) / (Yo2_u - Yo2_b);
      lam_ref.add(c, gc * dL);
    }
  }

  // ---- Cases A/B/C ----
  struct CaseSpec {
    const char* name;
    double u_over_SL;
    double lt_over_dL;
    double u_jet;
  };
  const CaseSpec specs[3] = {{"A", 3.0, 0.7, 70.0},
                             {"B", 6.0, 1.0, 90.0},
                             {"C", 10.0, 1.5, 90.0}};
  // Quick-mode grids resolve delta_L with ~7 points (paper: 15); the
  // turbulence length scale is floored at 5 cells so the synthetic inflow
  // modes survive the 10th-order filter.
  const double stations[3] = {0.25, 0.5, 0.75};
  std::vector<CaseResult> results;

  for (const auto& spec : specs) {
    sv::BunsenParams prm;
    prm.nx = full ? 280 : 120;
    prm.ny = full ? 224 : 92;
    prm.Lx = full ? 0.0112 : 0.0055;
    prm.Ly = full ? 0.009 : 0.0042;
    prm.slot_h = 0.0011;
    prm.u_jet = spec.u_jet;
    prm.u_coflow = 0.25 * spec.u_jet;
    prm.u_rms = spec.u_over_SL * SL;
    const double dx = prm.Lx / prm.nx;
    prm.turb_len = std::max(spec.lt_over_dL * dL, 5.0 * dx);
    prm.seed = 0xb0b + spec.name[0];
    auto cs = sv::bunsen_case(prm);

    sv::Solver s(cs.cfg);
    s.initialize(cs.init);
    const auto& l = s.layout();

    CaseResult res;
    res.name = spec.name;
    res.gradc_on_c.assign(3, sv::ConditionalStats(0.0, 1.0, 20));

    const double flow_through = prm.Lx / prm.u_jet;
    const double t_end = (full ? 3.0 : 2.0) * flow_through;
    const double t_stats = 0.9 * flow_through;

    // Centerline velocity time series at the 1/4 station for u'.
    std::vector<double> u_quarter;
    double contour_sum = 0.0;
    int contour_n = 0;
    double eps_sum = 0.0;
    int eps_n = 0;

    s3d::Timer wall;
    const int sample_every = 50;
    while (s.time() < t_end) {
      s.run(sample_every, {}, 10);
      auto& prim = s.primitives();
      // u' from the transverse velocity in the jet core at the 1/4
      // station (zero mean there, so jet flapping does not contaminate).
      const int iq = l.nx / 4;
      for (int dj : {-2, 0, 2})
        u_quarter.push_back(prim.v(iq, l.ny / 2 + dj, 0));
      if (s.time() < t_stats) continue;

      auto c = sv::progress_variable_field(mech, prim, l, cs.Y_o2_unburnt,
                                           cs.Y_o2_burnt);
      auto gc = sv::gradient_magnitude(s.rhs().ops(), c);
      for (int st = 0; st < 3; ++st) {
        const int ic = std::min(static_cast<int>(stations[st] * l.nx),
                                l.nx - 1);
        // Window of a few columns around the station.
        for (int di = -2; di <= 2; ++di) {
          const int i = std::clamp(ic + di, 0, l.nx - 1);
          for (int j = 0; j < l.ny; ++j) {
            const double cv = c(i, j, 0);
            if (cv > 0.01 && cv < 0.99)
              res.gradc_on_c[st].add(cv, gc(i, j, 0) * dL);
          }
        }
      }
      contour_sum +=
          sv::contour_length_2d(c, l, s.mesh(), s.offset(), 0.65);
      ++contour_n;
      // Dissipation for the turbulence scales (nu at unburnt conditions).
      const double nu_u = 8.5e-5 * std::pow(800.0 / 800.0, 0.7);
      eps_sum += sv::mean_dissipation(s.rhs().ops(), prim, l, nu_u);
      ++eps_n;
    }

    // Turbulence quantities at the 1/4 station.
    double um = 0.0;
    for (double u : u_quarter) um += u;
    um /= u_quarter.size();
    double uv = 0.0;
    for (double u : u_quarter) uv += (u - um) * (u - um);
    res.u_prime = std::sqrt(uv / u_quarter.size());
    const double eps = eps_sum / std::max(eps_n, 1);
    const double nu = 8.5e-5;  // paper's kinematic viscosity at inflow
    res.lt = std::pow(res.u_prime, 3) / std::max(eps, 1e-12);
    res.Re_t = res.u_prime * res.lt / nu;
    const double lk = std::pow(nu * nu * nu / std::max(eps, 1e-12), 0.25);
    res.Ka = (dL / lk) * (dL / lk);
    res.Da = SL * res.lt / (std::max(res.u_prime, 1e-12) * dL);
    res.Re_jet = prm.u_jet * prm.slot_h / nu;
    res.mean_contour_per_h =
        contour_sum / std::max(contour_n, 1) / prm.slot_h;

    // fig. 12 snapshot.
    auto& prim = s.primitives();
    auto c = sv::progress_variable_field(mech, prim, l, cs.Y_o2_unburnt,
                                         cs.Y_o2_burnt);
    s3d::viz::render_slice(c, 0.0, 1.0, s3d::viz::colormap_viridis, 4)
        .write_ppm(out + "/fig12_case" + spec.name + "_c.ppm");
    std::printf("Case %s: %d steps, %.0f us simulated, %.0f s wall\n",
                spec.name, s.steps_taken(), s.time() * 1e6, wall.seconds());
    results.push_back(std::move(res));
  }

  // ---- Table 1 ----
  std::printf("\nTable 1: simulation parameters (measured from the runs; "
              "paper values in brackets)\n");
  s3d::Table t1({"quantity", "Case A", "Case B", "Case C", "paper A/B/C"});
  auto row3 = [&](const std::string& name, double a, double b, double c,
                  const char* paper) {
    t1.add_row({name, s3d::Table::num(a, 3), s3d::Table::num(b, 3),
                s3d::Table::num(c, 3), paper});
  };
  row3("Re_jet", results[0].Re_jet, results[1].Re_jet, results[2].Re_jet,
       "840 / 1400 / 2100");
  row3("u'/S_L (target)", 3, 6, 10, "3 / 6 / 10");
  row3("u'/S_L (measured)", results[0].u_prime / SL,
       results[1].u_prime / SL, results[2].u_prime / SL, "3 / 6 / 10");
  row3("l_t/delta_L", results[0].lt / dL, results[1].lt / dL,
       results[2].lt / dL, "0.7 / 1 / 1.5");
  row3("Re_t", results[0].Re_t, results[1].Re_t, results[2].Re_t,
       "40 / 75 / 250");
  row3("Ka", results[0].Ka, results[1].Ka, results[2].Ka,
       "100 / 100 / 225");
  row3("Da", results[0].Da, results[1].Da, results[2].Da,
       "0.23 / 0.17 / 0.15");
  t1.print(std::cout);

  // ---- Figure 12 ----
  std::printf("\nFigure 12: mean flame-surface contour length / slot "
              "width (wrinkling grows A -> C):\n");
  for (const auto& r : results)
    std::printf("  case %s: %.2f\n", r.name.c_str(), r.mean_contour_per_h);

  // ---- Figure 13 ----
  std::printf("\nFigure 13: conditional mean |grad c| * delta_L vs c\n");
  for (int st = 0; st < 3; ++st) {
    std::printf("\n  station x/L = %.2f:\n", stations[st]);
    s3d::Table t13({"c bin", "laminar", "case A", "case B", "case C"});
    for (int b = 1; b < 19; ++b) {
      if (lam_ref.count(b) == 0) continue;
      std::vector<std::string> row{
          s3d::Table::num(lam_ref.bin_center(b), 3),
          s3d::Table::num(lam_ref.mean(b), 3)};
      for (const auto& r : results)
        row.push_back(r.gradc_on_c[st].count(b) >= 5
                          ? s3d::Table::num(r.gradc_on_c[st].mean(b), 3)
                          : "-");
      t13.add_row(row);
    }
    t13.print(std::cout);
  }

  // Shape summary: average |grad c| dL over the flame (0.2 < c < 0.8).
  std::printf("\nFlame-thickness summary (mean |grad c|*delta_L over "
              "0.2 < c < 0.8, all stations;\nlower = thicker preheat "
              "layer):\n");
  auto brush_mean = [&](const sv::ConditionalStats& cs2) {
    double sum = 0.0;
    long n = 0;
    for (int b = 4; b < 16; ++b) {
      sum += cs2.mean(b) * cs2.count(b);
      n += cs2.count(b);
    }
    return n > 0 ? sum / n : 0.0;
  };
  double lam_mean = brush_mean(lam_ref);
  std::printf("  laminar: %.3f\n", lam_mean);
  for (const auto& r : results) {
    double m = 0.0;
    for (int st = 0; st < 3; ++st) m += brush_mean(r.gradc_on_c[st]);
    m /= 3.0;
    std::printf("  case %s:  %.3f\n", r.name.c_str(), m);
  }
  std::printf(
      "\nPaper fig. 13 (3-D DNS): conditional gradients fall BELOW laminar\n"
      "(thickening) from A to B and saturate from B to C. Our quick-mode\n"
      "surrogate is 2-D, and -- as the paper itself notes of the prior\n"
      "2-D-turbulence literature -- 2-D vortices strain without the\n"
      "vortex-stretching cascade, so the mini-runs sit at or slightly\n"
      "ABOVE laminar (mild thinning). The statistic, the laminar\n"
      "reference, and the case sweep are the paper's; the 3-D conclusion\n"
      "needs the 3-D run (S3DPP_FULL with a 3-D grid; see EXPERIMENTS.md).\n");
  return 0;
}
