// Health-sentinel overhead on the lifted-flame step loop (DESIGN.md
// "Numerical health & recovery"). Three configurations of the same run:
//
//   bare      Solver::run(), no guard at all (the baseline);
//   disarmed  run_guarded() with health.enabled = false — the acceptance
//             bar is <= ~2% overhead, i.e. guarding a run costs nothing
//             until it is armed;
//   armed     run_guarded() with per-step scans and snapshots — the scan
//             cost is also broken out per step from the health.scan trace
//             span, plus the snapshot ring's memory footprint.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "solver/cases.hpp"
#include "solver/health.hpp"
#include "solver/solver.hpp"
#include "trace/trace.hpp"

namespace sv = s3d::solver;
namespace trace = s3d::trace;

namespace {

double wall_ms(const std::chrono::steady_clock::time_point& t0,
               const std::chrono::steady_clock::time_point& t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

sv::CaseSetup flame_case() {
  sv::LiftedJetParams p;
  p.nx = s3dpp_bench::full_mode() ? 64 : 32;
  p.ny = s3dpp_bench::full_mode() ? 48 : 24;
  return sv::lifted_jet_case(p);
}

}  // namespace

int main() {
  using s3dpp_bench::banner;
  using s3dpp_bench::full_mode;

  banner("bench_health",
         "health sentinel overhead on the lifted-flame step loop");

  const auto setup = flame_case();
  const int nsteps = full_mode() ? 60 : 20;
  const int warmup = 3;
  std::printf("grid %dx%d, %d steps (+%d warmup), air over H2/air chem\n\n",
              setup.cfg.x.n, setup.cfg.y.n, nsteps, warmup);

  // --- bare step loop -----------------------------------------------------
  double bare_ms = 0.0;
  {
    sv::Solver s(setup.cfg);
    s.initialize(setup.init);
    s.run(warmup);
    const auto t0 = std::chrono::steady_clock::now();
    s.run(nsteps);
    bare_ms = wall_ms(t0, std::chrono::steady_clock::now());
  }

  // --- guarded, disarmed --------------------------------------------------
  double disarmed_ms = 0.0;
  {
    sv::Solver s(setup.cfg);
    s.initialize(setup.init);
    s.run(warmup);
    sv::GuardOptions opts;
    opts.health.enabled = false;
    const auto t0 = std::chrono::steady_clock::now();
    const auto rep = sv::run_guarded(s, nsteps, opts);
    disarmed_ms = wall_ms(t0, std::chrono::steady_clock::now());
    if (!rep.completed) std::printf("disarmed run did not complete!\n");
  }

  // --- guarded, armed (per-step scan + snapshot) --------------------------
  double armed_ms = 0.0;
  double scan_ms_per_step = 0.0;
  long scans = 0;
  int rollbacks = 0;
  std::size_t ring_bytes = 0;
  {
    sv::Solver s(setup.cfg);
    s.initialize(setup.init);
    s.run(warmup);
    sv::GuardOptions opts;  // defaults: scan + snapshot every step
    {
      sv::SnapshotRing probe(opts.ring_depth);
      probe.capture(s);
      ring_bytes = probe.bytes() * opts.ring_depth;
    }
    trace::clear();
    trace::set_enabled(true);
    const auto t0 = std::chrono::steady_clock::now();
    const auto rep = sv::run_guarded(s, nsteps, opts);
    armed_ms = wall_ms(t0, std::chrono::steady_clock::now());
    trace::set_enabled(false);
    const auto sum = trace::summarize();
    if (const auto* k = sum.find("health.scan"); k && k->total_calls() > 0)
      scan_ms_per_step = k->total_s() * 1e3 / k->total_calls();
    trace::clear();
    scans = rep.scans;
    rollbacks = rep.rollbacks;
    if (!rep.completed) std::printf("armed run did not complete!\n");
  }

  const double per_step = bare_ms / nsteps;
  std::printf("%-28s %10.2f ms  (%.3f ms/step)\n", "bare Solver::run", bare_ms,
              per_step);
  std::printf("%-28s %10.2f ms  (%+.2f%% vs bare)\n", "run_guarded, disarmed",
              disarmed_ms, 100.0 * (disarmed_ms - bare_ms) / bare_ms);
  std::printf("%-28s %10.2f ms  (%+.2f%% vs bare)\n", "run_guarded, armed",
              armed_ms, 100.0 * (armed_ms - bare_ms) / bare_ms);
  std::printf("\narmed details: %ld scans, %d rollbacks, scan cost "
              "%.3f ms/step (%.1f%% of a step), snapshot ring %.1f MiB\n",
              scans, rollbacks, scan_ms_per_step,
              100.0 * scan_ms_per_step / per_step,
              static_cast<double>(ring_bytes) / (1024.0 * 1024.0));
  std::printf("\nacceptance: disarmed overhead must stay <= ~2%%.\n");
  return 0;
}
