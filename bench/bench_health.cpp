// Health-sentinel overhead on the lifted-flame step loop (DESIGN.md
// "Numerical health & recovery"). Four configurations of the same run:
//
//   bare      Solver::run(), no guard at all (the baseline);
//   disarmed  run_guarded() with health.enabled = false — the acceptance
//             bar is <= ~2% overhead, i.e. guarding a run costs nothing
//             until it is armed;
//   armed, in-pass       run_guarded() with per-step scans and
//             snapshots, conserved-state tripwires folded into the
//             step's final fused pass (HealthConfig::in_pass, DESIGN.md
//             §10) — the scan consumes the accumulated verdict instead
//             of sweeping U again;
//   armed, legacy scan   the same, with in_pass = false: the sentinel
//             re-sweeps the committed state separately each step. The
//             delta between the armed modes is the cost of the extra
//             sweep the fold removes.
//
// The armed scan cost is broken out per step from the health.scan trace
// span, plus the snapshot ring's memory footprint. Results are written
// machine-readably to BENCH_health_*.json.
//
// A second experiment (DESIGN.md §13) A/B-tests the recovery POLICY
// under a seeded fault schedule: three corrupt faults poison one cell
// each mid-run, and the same guarded case recovers via
//
//   halving   the legacy policy — global rollback plus dt halving;
//   ladder    the escalation ladder — localized rung-1/2 recovery that
//             restores and subcycles only the breaching block(s).
//
// The figure of merit is the wasted-work fraction (cell-steps discarded
// by restores / cell-steps executed) and the recovery wall-time over a
// fault-free baseline; the ladder must waste strictly less than the
// global policy or the bench exits nonzero (BENCH_health_ab.json).

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "resilience/fault.hpp"
#include "solver/cases.hpp"
#include "solver/health.hpp"
#include "solver/solver.hpp"
#include "trace/trace.hpp"

namespace sv = s3d::solver;
namespace trace = s3d::trace;
namespace fault = s3d::fault;

namespace {

double wall_ms(const std::chrono::steady_clock::time_point& t0,
               const std::chrono::steady_clock::time_point& t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

sv::CaseSetup flame_case() {
  sv::LiftedJetParams p;
  p.nx = s3dpp_bench::full_mode() ? 64 : 32;
  p.ny = s3dpp_bench::full_mode() ? 48 : 24;
  return sv::lifted_jet_case(p);
}

}  // namespace

int main() {
  using s3dpp_bench::banner;
  using s3dpp_bench::full_mode;

  banner("bench_health",
         "health sentinel overhead on the lifted-flame step loop");

  const auto setup = flame_case();
  const int nsteps = full_mode() ? 60 : 20;
  const int warmup = 3;
  std::printf("grid %dx%d, %d steps (+%d warmup), air over H2/air chem\n\n",
              setup.cfg.x.n, setup.cfg.y.n, nsteps, warmup);

  // --- bare step loop -----------------------------------------------------
  // Also the source of the per-kernel step profile (RhsTimers): the
  // chemistry / transport share of RHS time contextualizes the sentinel
  // overheads below against the paper's fig. 2 kernel breakdown.
  double bare_ms = 0.0;
  double chem_share = 0.0, transport_share = 0.0;
  {
    sv::Solver s(setup.cfg);
    s.initialize(setup.init);
    s.run(warmup);
    s.rhs().reset_timers();
    const auto t0 = std::chrono::steady_clock::now();
    s.run(nsteps);
    bare_ms = wall_ms(t0, std::chrono::steady_clock::now());
    const sv::RhsTimers& t = s.rhs().timers();
    const double total = t.primitives + t.halo + t.gradients +
                         t.transport_props + t.diffusive_flux +
                         t.reaction_rate + t.convective + t.boundary;
    if (total > 0.0) {
      chem_share = t.reaction_rate / total;
      transport_share = t.diffusive_flux / total;
    }
  }

  // --- guarded, disarmed --------------------------------------------------
  double disarmed_ms = 0.0;
  {
    sv::Solver s(setup.cfg);
    s.initialize(setup.init);
    s.run(warmup);
    sv::GuardOptions opts;
    opts.health.enabled = false;
    const auto t0 = std::chrono::steady_clock::now();
    const auto rep = sv::run_guarded(s, nsteps, opts);
    disarmed_ms = wall_ms(t0, std::chrono::steady_clock::now());
    if (!rep.completed) std::printf("disarmed run did not complete!\n");
  }

  // --- guarded, armed: in-pass tripwires vs legacy separate scan ----------
  struct ArmedResult {
    double total_ms = 0.0;
    double scan_ms_per_step = 0.0;
    long scans = 0;
    long in_pass_scans = 0;
    int rollbacks = 0;
    std::size_t ring_bytes = 0;
  };
  auto run_armed = [&](bool in_pass) {
    ArmedResult r;
    sv::Solver s(setup.cfg);
    s.initialize(setup.init);
    s.run(warmup);
    sv::GuardOptions opts;  // defaults: scan + snapshot every step
    opts.health.in_pass = in_pass;
    {
      sv::SnapshotRing probe(opts.ring_depth);
      probe.capture(s);
      r.ring_bytes = probe.bytes() * opts.ring_depth;
    }
    trace::clear();
    trace::set_enabled(true);
    const auto t0 = std::chrono::steady_clock::now();
    const auto rep = sv::run_guarded(s, nsteps, opts);
    r.total_ms = wall_ms(t0, std::chrono::steady_clock::now());
    trace::set_enabled(false);
    const auto sum = trace::summarize();
    if (const auto* k = sum.find("health.scan"); k && k->total_calls() > 0)
      r.scan_ms_per_step = k->total_s() * 1e3 / k->total_calls();
    if (const auto* c = sum.find_counter("health.in_pass_scans"))
      r.in_pass_scans = static_cast<long>(c->total);
    trace::clear();
    r.scans = rep.scans;
    r.rollbacks = rep.rollbacks;
    if (!rep.completed) std::printf("armed run did not complete!\n");
    return r;
  };
  const ArmedResult in_pass = run_armed(true);
  const ArmedResult legacy = run_armed(false);

  const double per_step = bare_ms / nsteps;
  std::printf("%-28s %10.2f ms  (%.3f ms/step)\n", "bare Solver::run", bare_ms,
              per_step);
  std::printf("%-28s %10.2f ms  (%+.2f%% vs bare)\n", "run_guarded, disarmed",
              disarmed_ms, 100.0 * (disarmed_ms - bare_ms) / bare_ms);
  std::printf("%-28s %10.2f ms  (%+.2f%% vs bare)\n",
              "run_guarded, armed in-pass", in_pass.total_ms,
              100.0 * (in_pass.total_ms - bare_ms) / bare_ms);
  std::printf("%-28s %10.2f ms  (%+.2f%% vs bare)\n",
              "run_guarded, legacy scan", legacy.total_ms,
              100.0 * (legacy.total_ms - bare_ms) / bare_ms);
  std::printf("\nin-pass : %ld scans (%ld folded), %d rollbacks, scan "
              "consume %.3f ms/step (%.1f%% of a step)\n",
              in_pass.scans, in_pass.in_pass_scans, in_pass.rollbacks,
              in_pass.scan_ms_per_step,
              100.0 * in_pass.scan_ms_per_step / per_step);
  std::printf("legacy  : %ld scans (%ld folded), %d rollbacks, scan sweep "
              "  %.3f ms/step (%.1f%% of a step)\n",
              legacy.scans, legacy.in_pass_scans, legacy.rollbacks,
              legacy.scan_ms_per_step,
              100.0 * legacy.scan_ms_per_step / per_step);
  std::printf("snapshot ring %.1f MiB\n",
              static_cast<double>(in_pass.ring_bytes) / (1024.0 * 1024.0));
  std::printf("step profile: chemistry %.1f%%, transport %.1f%% of RHS "
              "time\n",
              100.0 * chem_share, 100.0 * transport_share);

  const double cells =
      static_cast<double>(setup.cfg.x.n) * setup.cfg.y.n * setup.cfg.z.n;
  for (const bool folded : {true, false}) {
    const ArmedResult& r = folded ? in_pass : legacy;
    s3dpp_bench::BenchResult out;
    out.name = folded ? "health_armed_in_pass" : "health_armed_legacy";
    out.median_ns_per_cell_step = r.total_ms * 1e6 / (cells * nsteps);
    out.passes = r.scans;
    out.extra = {{"scan_ms_per_step", r.scan_ms_per_step},
                 {"in_pass_scans", static_cast<double>(r.in_pass_scans)},
                 {"total_ms", r.total_ms},
                 {"chem_share", chem_share},
                 {"transport_share", transport_share}};
    s3dpp_bench::write_bench_json(out);
  }

  int rc = 0;
  if (in_pass.in_pass_scans == 0) {
    std::printf("\nFAIL: in-pass mode never folded a tripwire scan\n");
    rc = 1;
  }
  if (legacy.in_pass_scans != 0) {
    std::printf("\nFAIL: legacy mode reported folded scans\n");
    rc = 1;
  }

  // --- A/B: global dt halving vs the escalation ladder --------------------
#ifndef S3D_ADAPTIVE_OFF
  std::printf("\nrecovery policy A/B under a seeded fault schedule "
              "(3 corrupt faults)\n");
  struct PolicyResult {
    double total_ms = 0.0;
    double wasted_frac = 0.0;
    int rollbacks = 0;
    int subcycle_recoveries = 0;
    int local_rollbacks = 0;
    long fires = 0;
    double dt_scale = 1.0;
  };
  // `faulted` arms the schedule; the same seed and plans make the two
  // policies face the same injected corruptions (the scan-call indices
  // shift slightly once recovery inserts extra scans, but the count and
  // placement law are identical).
  auto run_policy = [&](bool ladder, bool faulted) {
    PolicyResult r;
    sv::Solver s(setup.cfg);
    s.initialize(setup.init);
    s.run(warmup);
    sv::GuardOptions opts;  // scan + snapshot every step
    sv::AdaptiveOptions ad;
    ad.enabled = ladder;
    opts.adaptive = ad;
    fault::reset();
    if (faulted) {
      fault::set_seed(2026);
      for (const long nth : {5L, 11L, 17L})
        fault::arm({.site = "solver.health",
                    .kind = fault::Kind::corrupt,
                    .nth = nth,
                    .max_fires = 1});
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto rep = sv::run_guarded(s, nsteps, opts);
    r.total_ms = wall_ms(t0, std::chrono::steady_clock::now());
    r.fires = fault::fires_at("solver.health");
    fault::reset();
    if (rep.executed_cell_steps > 0)
      r.wasted_frac = static_cast<double>(rep.discarded_cell_steps) /
                      static_cast<double>(rep.executed_cell_steps);
    r.rollbacks = rep.rollbacks;
    r.subcycle_recoveries = rep.subcycle_recoveries;
    r.local_rollbacks = rep.local_rollbacks;
    r.dt_scale = rep.dt_scale;
    if (!rep.completed) std::printf("policy run did not complete!\n");
    return r;
  };
  const PolicyResult clean = run_policy(false, false);
  const PolicyResult halving = run_policy(false, true);
  const PolicyResult ladder = run_policy(true, true);

  const double halving_recovery_ms = halving.total_ms - clean.total_ms;
  const double ladder_recovery_ms = ladder.total_ms - clean.total_ms;
  std::printf("%-28s %10.2f ms  (baseline, no faults)\n", "clean guarded run",
              clean.total_ms);
  std::printf("%-28s %10.2f ms  (+%.2f ms recovery)  wasted %.2f%%  "
              "%d global rollbacks, final dt x%g\n",
              "global halving", halving.total_ms, halving_recovery_ms,
              100.0 * halving.wasted_frac, halving.rollbacks,
              halving.dt_scale);
  std::printf("%-28s %10.2f ms  (+%.2f ms recovery)  wasted %.2f%%  "
              "%d subcycle + %d widened recoveries, %d global, final dt "
              "x%g\n",
              "escalation ladder", ladder.total_ms, ladder_recovery_ms,
              100.0 * ladder.wasted_frac, ladder.subcycle_recoveries,
              ladder.local_rollbacks, ladder.rollbacks, ladder.dt_scale);
  std::printf("(masked substeps evaluate the full-domain RHS for seam "
              "consistency, so on this small serial grid the ladder's "
              "wall-time is RHS-bound; the wasted-work fraction is the "
              "scale-relevant metric — a global rollback discards every "
              "rank's committed cell-steps, the ladder only the breaching "
              "block's.)\n");

  {
    s3dpp_bench::BenchResult out;
    out.name = "health_ab";
    out.median_ns_per_cell_step = ladder.total_ms * 1e6 / (cells * nsteps);
    out.passes = ladder.fires;
    out.extra = {{"ab_clean_ms", clean.total_ms},
                 {"ab_halving_ms", halving.total_ms},
                 {"ab_ladder_ms", ladder.total_ms},
                 {"ab_halving_recovery_ms", halving_recovery_ms},
                 {"ab_ladder_recovery_ms", ladder_recovery_ms},
                 {"ab_halving_wasted_frac", halving.wasted_frac},
                 {"ab_ladder_wasted_frac", ladder.wasted_frac},
                 {"ab_halving_rollbacks",
                  static_cast<double>(halving.rollbacks)},
                 {"ab_ladder_subcycle_recoveries",
                  static_cast<double>(ladder.subcycle_recoveries)},
                 {"ab_ladder_local_rollbacks",
                  static_cast<double>(ladder.local_rollbacks)},
                 {"ab_ladder_global_rollbacks",
                  static_cast<double>(ladder.rollbacks)},
                 {"ab_halving_final_dt_scale", halving.dt_scale},
                 {"ab_ladder_final_dt_scale", ladder.dt_scale}};
    s3dpp_bench::write_bench_json(out);
  }

  if (halving.fires != 3 || ladder.fires != 3) {
    std::printf("\nFAIL: fault schedule did not fire 3 times per policy "
                "(halving %ld, ladder %ld)\n",
                halving.fires, ladder.fires);
    rc = 1;
  }
  if (halving.rollbacks == 0) {
    std::printf("\nFAIL: global-halving policy never rolled back — the "
                "schedule exercised nothing\n");
    rc = 1;
  }
  if (!(ladder.wasted_frac < halving.wasted_frac)) {
    std::printf("\nFAIL: ladder wasted-work fraction %.4f is not below the "
                "global-halving policy's %.4f\n",
                ladder.wasted_frac, halving.wasted_frac);
    rc = 1;
  }
#else
  std::printf("\nrecovery policy A/B skipped: ladder compiled out "
              "(S3D_ADAPTIVE=OFF)\n");
#endif

  std::printf("\nacceptance: disarmed overhead <= ~2%%; armed in-pass must "
              "fold its scans (and be no slower than the legacy sweep on "
              "quiet machines); the escalation ladder must waste strictly "
              "less work than global halving under the seeded faults.\n");
  return rc;
}
