// Ablations for the design choices DESIGN.md calls out:
//
//  A. molecular-transport closure (mixture-averaged vs constant-Lewis vs
//     power-law): inner-loop cost and effect on a real H2/air flame --
//     justifies which model the scaled-down science benches use;
//  B. the 10th-order filter (strength and application interval): how much
//     it damps resolved scales vs how fast it kills the Nyquist mode --
//     justifies the default filter_alpha ~ 1, every step (the paper's
//     setting).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "chem/mechanisms.hpp"
#include "chem/mixing.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "numerics/stencil.hpp"
#include "solver/solver.hpp"

namespace sv = s3d::solver;
namespace chem = s3d::chem;

namespace {

sv::Config flame_cfg(std::shared_ptr<const chem::Mechanism> mech,
                     sv::TransportModel tm) {
  sv::Config cfg;
  cfg.mech = std::move(mech);
  cfg.x = {160, 0.005, false};
  cfg.y = {1, 1.0, false};
  cfg.z = {1, 1.0, false};
  cfg.faces[0][0] = {sv::BcKind::nscbc_outflow, 101325.0, 0.25};
  cfg.faces[0][1] = {sv::BcKind::nscbc_outflow, 101325.0, 0.25};
  cfg.transport = tm;
  return cfg;
}

}  // namespace

int main() {
  s3dpp_bench::banner("Ablations",
                      "transport closure and filter design choices");

  // ---- A. transport closure ----
  auto mech = std::make_shared<const chem::Mechanism>(chem::h2_li2004());
  auto Yu = chem::premixed_fuel_air_Y(*mech, "H2", 1.0);

  std::printf("A. Transport closure on a 1-D H2/air flame "
              "(160 pts, %d species):\n\n",
              mech->n_species());
  s3d::Table ta({"model", "us/pt/step", "T_max after 12 us [K]",
                 "flame x after 12 us [mm]"});
  for (auto [name, tm] :
       {std::pair{"mixture_averaged", sv::TransportModel::mixture_averaged},
        std::pair{"constant_lewis", sv::TransportModel::constant_lewis},
        std::pair{"power_law", sv::TransportModel::power_law}}) {
    auto cfg = flame_cfg(mech, tm);
    sv::Solver s(cfg);
    s.initialize([&](double x, double, double, sv::InflowState& st,
                     double& p) {
      st.u = st.v = st.w = 0.0;
      st.T = 300.0 + 1500.0 * std::exp(-std::pow((x - 0.0035) / 3e-4, 2));
      for (int i = 0; i < mech->n_species(); ++i) st.Y[i] = Yu[i];
      p = 101325.0;
    });
    s3d::Timer t;
    int steps = 0;
    while (s.time() < 1.2e-5) {
      s.step(0.7 * s.stable_dt());
      ++steps;
    }
    const double wall = t.seconds();
    const auto& prim = s.primitives();
    double T_max = 0.0;
    double x_front = 0.0;
    for (int i = 0; i < 160; ++i) {
      T_max = std::max(T_max, prim.T(i, 0, 0));
      if (prim.T(i, 0, 0) > 1100.0) x_front = s.coord(0, i);
    }
    ta.add_row({name, s3d::Table::num(wall / steps / 160 * 1e6, 3),
                s3d::Table::num(T_max, 4),
                s3d::Table::num(x_front * 1e3, 3)});
  }
  ta.print(std::cout);
  std::printf(
      "\nThe cheap closures track the full mixture-averaged flame closely\n"
      "(same differential-diffusion Lewis numbers, calibrated once); the\n"
      "scaled-down science benches use power_law, trading <~ a few %% of\n"
      "flame position for a large inner-loop saving.\n");

  // ---- B. filter ----
  std::printf("\nB. 10th-order filter: damping per application at "
              "normalized wavenumber theta:\n\n");
  s3d::Table tb({"theta/pi", "alpha=0.2", "alpha=0.5", "alpha=1.0"});
  for (double frac : {0.125, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double th = frac * 3.14159265358979;
    tb.add_row({s3d::Table::num(frac, 3),
                s3d::Table::num(s3d::numerics::filter_transfer(th, 0.2), 4),
                s3d::Table::num(s3d::numerics::filter_transfer(th, 0.5), 4),
                s3d::Table::num(s3d::numerics::filter_transfer(th, 1.0), 4)});
  }
  tb.print(std::cout);

  // Nyquist decay vs resolved-mode decay over 100 steps at the default.
  const double resolved = std::pow(
      s3d::numerics::filter_transfer(0.25 * 3.14159265, 0.999), 100);
  const double nyquist = std::pow(
      s3d::numerics::filter_transfer(3.14159265, 0.999), 100);
  std::printf(
      "\nOver 100 applications at alpha = 0.999 (the default): a resolved\n"
      "theta = pi/4 mode keeps %.6f of its amplitude while the Nyquist\n"
      "mode keeps %.1e -- the filter removes only what the 8th-order\n"
      "stencils cannot represent, which is why S3D applies it every step.\n",
      resolved, nyquist);
  return 0;
}
