// Figures 4 & 5: restructuring S3D's diffusive-flux loop nest. The naive
// Fortran-90-array-statement form is measured against the LoopTool-style
// transformed form (unswitching + scalarization + fusion + unroll-and-jam)
// on the 50^3 model problem. Paper: the transformed loop nest ran 2.94x
// faster on a Cray XD1, cutting whole-program time by 6.8% (the nest was
// 11.3% of execution); the aggregate node-tuning campaign gained 12.7%.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "perf/kernels.hpp"

namespace perf = s3d::perf;

namespace {

perf::DiffFluxArrays& arrays() {
  static perf::DiffFluxArrays a = [] {
    perf::DiffFluxArrays x;
    x.init(s3dpp_bench::full_mode() ? 80 : 50, 9);
    return x;
  }();
  return a;
}

void BM_DiffFlux_Naive(benchmark::State& state) {
  auto& a = arrays();
  for (auto _ : state) {
    perf::run_naive(a, {});
    benchmark::DoNotOptimize(a.diffFlux[0].data());
  }
  state.SetItemsProcessed(state.iterations() * a.pts());
}
BENCHMARK(BM_DiffFlux_Naive)->Unit(benchmark::kMillisecond);

void BM_DiffFlux_Optimized(benchmark::State& state) {
  auto& a = arrays();
  for (auto _ : state) {
    perf::run_optimized(a, {});
    benchmark::DoNotOptimize(a.diffFlux[0].data());
  }
  state.SetItemsProcessed(state.iterations() * a.pts());
}
BENCHMARK(BM_DiffFlux_Optimized)->Unit(benchmark::kMillisecond);

void BM_DiffFlux_Naive_AllSwitches(benchmark::State& state) {
  auto& a = arrays();
  for (auto _ : state) {
    perf::run_naive(a, {true, true});
    benchmark::DoNotOptimize(a.diffFlux[0].data());
  }
}
BENCHMARK(BM_DiffFlux_Naive_AllSwitches)->Unit(benchmark::kMillisecond);

void BM_DiffFlux_Optimized_AllSwitches(benchmark::State& state) {
  auto& a = arrays();
  for (auto _ : state) {
    perf::run_optimized(a, {true, true});
    benchmark::DoNotOptimize(a.diffFlux[0].data());
  }
}
BENCHMARK(BM_DiffFlux_Optimized_AllSwitches)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  s3dpp_bench::banner("Figures 4/5",
                      "LoopTool restructuring of the diffusive-flux nest");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();

  // Direct A/B timing for the headline speedup number.
  auto& a = arrays();
  auto time_of = [&](auto&& fn) {
    // Warm up, then best of 5.
    fn();
    double best = 1e30;
    for (int r = 0; r < 5; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const std::chrono::duration<double> d =
          std::chrono::steady_clock::now() - t0;
      best = std::min(best, d.count());
    }
    return best;
  };
  const double t_naive = time_of([&] { perf::run_naive(a, {}); });
  const double t_opt = time_of([&] { perf::run_optimized(a, {}); });
  const double speedup = t_naive / t_opt;
  std::printf(
      "\nDiffusive-flux nest (grid %d^3, 9 species):\n"
      "  naive (F90 array statements): %.2f ms\n"
      "  LoopTool-transformed:         %.2f ms\n"
      "  speedup: %.2fx   (paper: 2.94x on a Cray XD1)\n",
      a.n, t_naive * 1e3, t_opt * 1e3, speedup);
  const double nest_share = 0.113;  // paper: 11.3% of execution time
  std::printf(
      "  whole-program saving at the paper's 11.3%% nest share: %.1f%%\n"
      "  (paper: 6.8%%; full node-tuning campaign: 12.7%%)\n",
      100.0 * nest_share * (1.0 - 1.0 / speedup));
  return 0;
}
