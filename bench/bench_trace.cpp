// Trace subsystem benchmark: overhead accounting plus an end-to-end
// traced run.
//
// Part 1 measures the cost of the instrumentation itself on the Figure-2
// kernel-profile workload: identical solver steps with tracing disabled
// (the relaxed-atomic fast path every production run pays) and enabled
// (full event recording). The disabled overhead budget is <2%.
//
// Part 2 runs a reacting H2 periodic box on 8 vmpi ranks (2x2x2) plus a
// write-behind checkpoint through iosim with tracing on, then exports
//   bench_output/trace.json         -- Chrome-trace / Perfetto timeline,
//   bench_output/trace_summary.txt  -- per-phase kernel x rank table,
// and prints the same summary: the Fig. 2 shape (per-kernel exclusive
// time with min/mean/max across ranks) measured live.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <string>

#include "bench_common.hpp"
#include "chem/mechanisms.hpp"
#include "chem/mixing.hpp"
#include "common/timer.hpp"
#include "iosim/simfs.hpp"
#include "iosim/writers.hpp"
#include "solver/solver.hpp"
#include "trace/trace.hpp"
#include "vmpi/vmpi.hpp"

namespace sv = s3d::solver;
namespace chem = s3d::chem;
namespace io = s3d::iosim;
namespace trace = s3d::trace;
namespace vmpi = s3d::vmpi;

namespace {

sv::Config h2_box_cfg(int n) {
  static auto mech =
      std::make_shared<const chem::Mechanism>(chem::h2_li2004());
  sv::Config cfg;
  cfg.mech = mech;
  cfg.x = {n, 0.01, true};
  cfg.y = {n, 0.01, true};
  cfg.z = {n, 0.01, true};
  for (int a = 0; a < 3; ++a)
    for (auto& f : cfg.faces[a]) f.kind = sv::BcKind::periodic;
  cfg.transport = sv::TransportModel::constant_lewis;
  cfg.T_ref = 300.0;
  return cfg;
}

sv::InitFn h2_box_init(const std::shared_ptr<const chem::Mechanism>& mech) {
  auto Y0 = chem::premixed_fuel_air_Y(*mech, "H2", 1.0);
  return [Y0](double x, double, double, sv::InflowState& st, double& p) {
    st.u = st.v = st.w = 0.0;
    st.T = 310.0;
    st.Y.fill(0.0);
    for (std::size_t i = 0; i < Y0.size(); ++i) st.Y[i] = Y0[i];
    p = 101325.0 * (1.0 + 0.005 * std::sin(600.0 * x));
  };
}

double time_steps(sv::Solver& s, double dt, int nsteps) {
  s3d::Timer t;
  for (int i = 0; i < nsteps; ++i) s.step(dt);
  return t.seconds();
}

}  // namespace

int main() {
  using s3dpp_bench::banner;
  using s3dpp_bench::full_mode;
  using s3dpp_bench::out_dir;
  banner("Trace", "instrumentation overhead and traced end-to-end run");

  const int n = full_mode() ? 32 : 20;
  const int nsteps = full_mode() ? 10 : 4;

  // ---- Part 1: overhead of the instrumentation on the fig. 2 workload.
  auto cfg = h2_box_cfg(n);
  sv::Solver s(cfg);
  s.initialize(h2_box_init(cfg.mech));
  const double dt = 0.5 * s.stable_dt();
  trace::set_enabled(false);
  s.step(dt);  // warm-up, excluded

  const double t_off = time_steps(s, dt, nsteps);
  trace::clear();
  trace::set_enabled(true);
  const double t_on = time_steps(s, dt, nsteps);
  trace::set_enabled(false);
  trace::clear();

  // Microbenchmark: cost of one disarmed Span (what instrumented code
  // pays in production when tracing is off).
  constexpr int kProbe = 10'000'000;
  s3d::Timer micro;
  for (int i = 0; i < kProbe; ++i) {
    trace::Span sp("bench.probe", "bench");
    trace::counter_add("bench.probe_count", 1.0);
  }
  const double ns_per_probe = micro.seconds() / kProbe * 1e9;

  std::printf("\n%d^3 reacting H2 box, %d steps (after warm-up):\n", n,
              nsteps);
  std::printf("  tracing off : %8.3f s/step\n", t_off / nsteps);
  std::printf("  tracing on  : %8.3f s/step  (recording overhead %+.2f%%)\n",
              t_on / nsteps, (t_on / t_off - 1.0) * 100.0);
  std::printf("  disarmed span+counter pair: %.1f ns (budget: <2%% of any "
              "instrumented kernel)\n",
              ns_per_probe);
#ifdef S3D_TRACE_DISABLED
  std::printf("  (built with S3D_TRACE_DISABLED: all of the above is the "
              "no-op stub)\n");
#endif

  // ---- Part 2: traced 8-rank run + write-behind checkpoint, exported.
  trace::clear();
  trace::set_enabled(true);
  {
    trace::Span run_sp("bench.traced_run", "bench");
    vmpi::run(8, [&](s3d::vmpi::Comm& comm) {
      sv::Solver ps(cfg, comm, 2, 2, 2);
      ps.initialize(h2_box_init(cfg.mech));
      ps.run(2);
    });
    // The checkpoint-write stage of the pipeline, through the simulated
    // filesystem (spans land in the iosim category).
    io::SimFS fs(io::lustre_like());
    io::CheckpointSpec spec;
    spec.nx = spec.ny = spec.nz = 8;
    spec.px = spec.py = spec.pz = 2;
    io::write_write_behind(fs, spec, {}, 0, 0.0);
  }
  trace::set_enabled(false);

  const std::string json_path = out_dir() + "/trace.json";
  trace::write_chrome_trace(json_path);
  const std::string summary_path = out_dir() + "/trace_summary.txt";
  {
    std::ofstream f(summary_path);
    trace::write_summary(f);
  }

  std::printf("\nPer-phase summary of the traced 8-rank run:\n\n");
  trace::write_summary(std::cout);

  const auto summary = trace::summarize();
  std::set<std::string> cats;
  for (const auto& k : summary.kernels) cats.insert(k.category);
  std::printf("\nsubsystems traced:");
  for (const auto& c : cats) std::printf(" %s", c.c_str());
  std::printf("\nwrote %s (open in ui.perfetto.dev or chrome://tracing)\n",
              json_path.c_str());
  std::printf("wrote %s\n", summary_path.c_str());
  trace::clear();
  return 0;
}
