// Figure 1: weak-scaling cost per grid point per time step of S3D on the
// Cray XT3/XT4 hybrid Jaguar.
//
// Stage 1 measures the real solver on this host: the section 4.1 model
// problem (pressure wave, detailed H2 chemistry) gives the per-kernel cost
// decomposition. Stage 2 feeds that decomposition into the calibrated
// cluster model (see DESIGN.md substitutions) anchored at the paper's
// 55 us/point/step XT4 rate, and prints the three weak-scaling series of
// fig. 1: pure XT4 (flat ~55), pure XT3 (flat ~68), and the hybrid, which
// runs at the XT4 rate up to 8192 cores and at the XT3 rate beyond
// (paper: "performance is dominated by the memory bandwidth limitations
// of the XT3 nodes").

#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "chem/mechanisms.hpp"
#include "chem/mixing.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "perf/model.hpp"
#include "solver/solver.hpp"

namespace sv = s3d::solver;
namespace chem = s3d::chem;

int main() {
  using s3dpp_bench::banner;
  banner("Figure 1", "weak scaling of S3D on the XT3/XT4 hybrid");

  // ---- Stage 1: measure the model problem on this host ----
  const int n = s3dpp_bench::full_mode() ? 50 : 22;
  auto mech = std::make_shared<const chem::Mechanism>(chem::h2_li2004());
  sv::Config cfg;
  cfg.mech = mech;
  cfg.x = {n, 0.01, true};
  cfg.y = {n, 0.01, true};
  cfg.z = {n, 0.01, true};
  for (int a = 0; a < 3; ++a)
    for (auto& f : cfg.faces[a]) f.kind = sv::BcKind::periodic;
  cfg.transport = sv::TransportModel::constant_lewis;
  cfg.T_ref = 300.0;

  auto Y0 = chem::premixed_fuel_air_Y(*mech, "H2", 1.0);
  sv::Solver s(cfg);
  s.initialize([&](double x, double y, double z, sv::InflowState& st,
                   double& p) {
    st.u = st.v = st.w = 0.0;
    st.T = 300.0;
    st.Y.fill(0.0);
    for (std::size_t i = 0; i < Y0.size(); ++i) st.Y[i] = Y0[i];
    const double r2 = std::pow(x - 0.005, 2) + std::pow(y - 0.005, 2) +
                      std::pow(z - 0.005, 2);
    p = 101325.0 * (1.0 + 0.01 * std::exp(-r2 / 1e-6));
  });

  const double dt = 0.5 * s.stable_dt();
  s.step(dt);  // warm-up
  s.rhs().reset_timers();
  const int steps = s3dpp_bench::full_mode() ? 10 : 4;
  s3d::Timer t;
  for (int i = 0; i < steps; ++i) s.step(dt);
  const double wall = t.seconds();
  const double pts = static_cast<double>(n) * n * n;
  const double us_per_pt_step = wall / steps / pts * 1e6;

  std::printf("Model problem (pressure wave, H2 chemistry) on this host:\n");
  std::printf("  grid %d^3, %d steps: %.3f s -> %.2f us/point/step\n\n", n,
              steps, wall, us_per_pt_step);

  const auto& tm = s.rhs().timers();
  // Per-kernel measured shares with memory-bound fractions (how much of
  // each kernel streams data vs computes; see DESIGN.md).
  std::vector<s3d::perf::KernelShare> shares = {
      {"GET_PRIMITIVES", tm.primitives, 0.2},
      {"DERIVATIVES", tm.gradients, 0.55},
      {"COMPUTESPECIESDIFFFLUX", tm.diffusive_flux, 0.5},
      {"CONVECTIVE_FLUX+DIV", tm.convective, 0.55},
      {"REACTION_RATE", tm.reaction_rate, 0.05},
      {"BOUNDARY+FILTER", tm.boundary + tm.halo, 0.2},
  };
  std::printf("Measured kernel decomposition (share of RHS time):\n");
  double total = 0.0;
  for (const auto& k : shares) total += k.seconds;
  for (const auto& k : shares)
    std::printf("  %-24s %5.1f%%  (mem-bound fraction %.2f)\n",
                k.name.c_str(), 100.0 * k.seconds / total, k.mem_fraction);

  // ---- Stage 2: the calibrated cluster model ----
  s3d::perf::ClusterModel model(shares, 55e-6);
  std::printf("\nModel memory-bound fraction of a step: %.2f\n",
              model.mem_fraction());
  std::printf("Predicted XT3/XT4 cost ratio: %.3f (paper: 68/55 = 1.24)\n\n",
              model.cost(s3d::perf::xt3()) / model.cost(s3d::perf::xt4()));

  s3d::Table table({"cores", "XT4 [us/pt/step]", "XT3 [us/pt/step]",
                    "XT3+XT4 hybrid [us/pt/step]"});
  const double c4 = model.cost(s3d::perf::xt4()) * 1e6;
  const double c3 = model.cost(s3d::perf::xt3()) * 1e6;
  for (long cores : {2L, 16L, 128L, 1024L, 4096L, 8192L, 12000L, 16000L,
                     22800L}) {
    // Jaguar: <= 8192 cores fit on pure XT4 (or pure XT3); beyond that the
    // allocation must mix and the ghost-exchange sync pins the rate at XT3.
    const bool fits_pure = cores <= 8192;
    const double hybrid = fits_pure ? c4 : model.hybrid_cost(0.46) * 1e6;
    table.add_row({std::to_string(cores),
                   fits_pure ? s3d::Table::num(c4, 4) : "-",
                   fits_pure ? s3d::Table::num(c3, 4) : "-",
                   s3d::Table::num(hybrid, 4)});
  }
  table.print(std::cout);
  std::printf(
      "\nPaper fig. 1: XT4 flat ~55, XT3 flat ~68, hybrid ~68 beyond 8192\n"
      "cores. Flat weak scaling follows from nearest-neighbour-only\n"
      "communication (~%.0f kB per field per face at 50^3).\n",
      50.0 * 50.0 * 4 * 8 / 1024.0);
  return 0;
}
