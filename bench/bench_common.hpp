#pragma once
// Shared helpers for the per-figure benchmark binaries.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace s3dpp_bench {

/// True when S3DPP_FULL=1: run the larger (slower) configurations.
inline bool full_mode() {
  const char* v = std::getenv("S3DPP_FULL");
  return v != nullptr && v[0] == '1';
}

/// Output directory for images and data files produced by the benches.
inline std::string out_dir() {
  const char* v = std::getenv("S3DPP_BENCH_OUT");
  std::string d = v ? v : "bench_output";
  std::filesystem::create_directories(d);
  return d;
}

inline void banner(const char* id, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id, what);
  std::printf("==============================================================\n");
}

}  // namespace s3dpp_bench
