#pragma once
// Shared helpers for the per-figure benchmark binaries.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

namespace s3dpp_bench {

/// True when S3DPP_FULL=1: run the larger (slower) configurations.
inline bool full_mode() {
  const char* v = std::getenv("S3DPP_FULL");
  return v != nullptr && v[0] == '1';
}

/// Output directory for images and data files produced by the benches.
inline std::string out_dir() {
  const char* v = std::getenv("S3DPP_BENCH_OUT");
  std::string d = v ? v : "bench_output";
  std::filesystem::create_directories(d);
  return d;
}

inline void banner(const char* id, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id, what);
  std::printf("==============================================================\n");
}

/// Median of a sample set (destructive on a copy; empty -> 0).
inline double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t m = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + m, xs.end());
  double hi = xs[m];
  if (xs.size() % 2 == 0) {
    const double lo = *std::max_element(xs.begin(), xs.begin() + m);
    return 0.5 * (lo + hi);
  }
  return hi;
}

/// Machine-readable result record: written to
/// <out_dir>/BENCH_<name>.json so CI and plotting scripts can consume
/// benchmark output without scraping stdout. The fixed keys cover the
/// common contract (median ns per cell-step and the pass-plan sweep
/// count); `extra` carries bench-specific scalars.
struct BenchResult {
  std::string name;                     ///< bench/series identifier
  double median_ns_per_cell_step = 0.0; ///< median step cost per cell
  long passes = 0;                      ///< grid sweeps counted in the run
  std::vector<std::pair<std::string, double>> extra;
};

inline void write_bench_json(const BenchResult& r) {
  const std::string path = out_dir() + "/BENCH_" + r.name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"name\": \"%s\",\n", r.name.c_str());
  std::fprintf(f, "  \"median_ns_per_cell_step\": %.17g,\n",
               r.median_ns_per_cell_step);
  std::fprintf(f, "  \"passes\": %ld", r.passes);
  for (const auto& [k, v] : r.extra)
    std::fprintf(f, ",\n  \"%s\": %.17g", k.c_str(), v);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace s3dpp_bench
