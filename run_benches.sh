#!/bin/sh
# Regenerate every paper table/figure (see DESIGN.md experiment index).
# Usage: ./run_benches.sh  [S3DPP_FULL=1 for the larger configurations]
set -e
cd "$(dirname "$0")"
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done
