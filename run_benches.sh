#!/bin/sh
# Regenerate every paper table/figure (see DESIGN.md experiment index).
# Usage: ./run_benches.sh  [S3DPP_FULL=1 for the larger configurations]
set -e
cd "$(dirname "$0")"
mkdir -p bench_output
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done

# bench_resilience sweeps checkpoint interval vs injected failure rate and
# prints an MTTR table; it is part of the loop above (build/bench/*) and
# needs no artifacts beyond its stdout table.

# bench_trace leaves the instrumentation artifacts behind; surface them.
if [ -f bench_output/trace_summary.txt ]; then
  echo ""
  echo "trace artifacts:"
  echo "  bench_output/trace.json          (ui.perfetto.dev / chrome://tracing)"
  echo "  bench_output/trace_summary.txt   (per-phase kernel x rank table)"
fi

# Machine-readable results: each bench writes BENCH_<name>.json
# (name, median ns/cell-step, pass count, extras) for CI/plotting.
set -- bench_output/BENCH_*.json
if [ -f "$1" ]; then
  echo ""
  echo "machine-readable results:"
  for j in "$@"; do echo "  $j"; done
fi
