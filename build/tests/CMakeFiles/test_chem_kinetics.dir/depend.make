# Empty dependencies file for test_chem_kinetics.
# This may be replaced when dependencies are built.
