file(REMOVE_RECURSE
  "CMakeFiles/test_chem_kinetics.dir/test_chem_kinetics.cpp.o"
  "CMakeFiles/test_chem_kinetics.dir/test_chem_kinetics.cpp.o.d"
  "test_chem_kinetics"
  "test_chem_kinetics.pdb"
  "test_chem_kinetics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chem_kinetics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
