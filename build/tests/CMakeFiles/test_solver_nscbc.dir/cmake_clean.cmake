file(REMOVE_RECURSE
  "CMakeFiles/test_solver_nscbc.dir/test_solver_nscbc.cpp.o"
  "CMakeFiles/test_solver_nscbc.dir/test_solver_nscbc.cpp.o.d"
  "test_solver_nscbc"
  "test_solver_nscbc.pdb"
  "test_solver_nscbc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_nscbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
