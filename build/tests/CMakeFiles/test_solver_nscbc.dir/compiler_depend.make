# Empty compiler generated dependencies file for test_solver_nscbc.
# This may be replaced when dependencies are built.
