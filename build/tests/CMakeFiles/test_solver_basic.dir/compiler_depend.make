# Empty compiler generated dependencies file for test_solver_basic.
# This may be replaced when dependencies are built.
