
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_solver_basic.cpp" "tests/CMakeFiles/test_solver_basic.dir/test_solver_basic.cpp.o" "gcc" "tests/CMakeFiles/test_solver_basic.dir/test_solver_basic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solver/CMakeFiles/s3dpp_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/s3dpp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/s3dpp_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/s3dpp_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/s3dpp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/s3dpp_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/s3dpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
