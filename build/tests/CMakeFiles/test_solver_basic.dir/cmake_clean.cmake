file(REMOVE_RECURSE
  "CMakeFiles/test_solver_basic.dir/test_solver_basic.cpp.o"
  "CMakeFiles/test_solver_basic.dir/test_solver_basic.cpp.o.d"
  "test_solver_basic"
  "test_solver_basic.pdb"
  "test_solver_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
