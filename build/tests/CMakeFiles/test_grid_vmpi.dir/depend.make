# Empty dependencies file for test_grid_vmpi.
# This may be replaced when dependencies are built.
