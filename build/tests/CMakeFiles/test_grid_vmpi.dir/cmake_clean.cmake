file(REMOVE_RECURSE
  "CMakeFiles/test_grid_vmpi.dir/test_grid_vmpi.cpp.o"
  "CMakeFiles/test_grid_vmpi.dir/test_grid_vmpi.cpp.o.d"
  "test_grid_vmpi"
  "test_grid_vmpi.pdb"
  "test_grid_vmpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_vmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
