file(REMOVE_RECURSE
  "CMakeFiles/test_chem_thermo.dir/test_chem_thermo.cpp.o"
  "CMakeFiles/test_chem_thermo.dir/test_chem_thermo.cpp.o.d"
  "test_chem_thermo"
  "test_chem_thermo.pdb"
  "test_chem_thermo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chem_thermo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
