# Empty dependencies file for test_chem_thermo.
# This may be replaced when dependencies are built.
