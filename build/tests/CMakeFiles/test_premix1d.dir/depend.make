# Empty dependencies file for test_premix1d.
# This may be replaced when dependencies are built.
