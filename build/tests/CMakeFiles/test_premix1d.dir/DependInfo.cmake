
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_premix1d.cpp" "tests/CMakeFiles/test_premix1d.dir/test_premix1d.cpp.o" "gcc" "tests/CMakeFiles/test_premix1d.dir/test_premix1d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/premix1d/CMakeFiles/s3dpp_premix1d.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/s3dpp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/chem/CMakeFiles/s3dpp_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/s3dpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
