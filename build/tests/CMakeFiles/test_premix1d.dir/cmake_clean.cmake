file(REMOVE_RECURSE
  "CMakeFiles/test_premix1d.dir/test_premix1d.cpp.o"
  "CMakeFiles/test_premix1d.dir/test_premix1d.cpp.o.d"
  "test_premix1d"
  "test_premix1d.pdb"
  "test_premix1d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_premix1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
