# Empty dependencies file for test_iosim.
# This may be replaced when dependencies are built.
