# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_chem_thermo[1]_include.cmake")
include("/root/repo/build/tests/test_chem_kinetics[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_numerics[1]_include.cmake")
include("/root/repo/build/tests/test_grid_vmpi[1]_include.cmake")
include("/root/repo/build/tests/test_solver_basic[1]_include.cmake")
include("/root/repo/build/tests/test_solver_nscbc[1]_include.cmake")
include("/root/repo/build/tests/test_solver_diagnostics[1]_include.cmake")
include("/root/repo/build/tests/test_premix1d[1]_include.cmake")
include("/root/repo/build/tests/test_iosim[1]_include.cmake")
include("/root/repo/build/tests/test_viz[1]_include.cmake")
include("/root/repo/build/tests/test_workflow[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
