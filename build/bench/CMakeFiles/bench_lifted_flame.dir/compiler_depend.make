# Empty compiler generated dependencies file for bench_lifted_flame.
# This may be replaced when dependencies are built.
