file(REMOVE_RECURSE
  "CMakeFiles/bench_lifted_flame.dir/bench_lifted_flame.cpp.o"
  "CMakeFiles/bench_lifted_flame.dir/bench_lifted_flame.cpp.o.d"
  "bench_lifted_flame"
  "bench_lifted_flame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lifted_flame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
