file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_hybrid_balance.dir/bench_fig3_hybrid_balance.cpp.o"
  "CMakeFiles/bench_fig3_hybrid_balance.dir/bench_fig3_hybrid_balance.cpp.o.d"
  "bench_fig3_hybrid_balance"
  "bench_fig3_hybrid_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_hybrid_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
