# Empty dependencies file for bench_fig3_hybrid_balance.
# This may be replaced when dependencies are built.
