# Empty dependencies file for bench_fig9_io.
# This may be replaced when dependencies are built.
