# Empty dependencies file for bench_fig1_weak_scaling.
# This may be replaced when dependencies are built.
