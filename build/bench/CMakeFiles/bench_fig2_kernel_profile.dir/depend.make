# Empty dependencies file for bench_fig2_kernel_profile.
# This may be replaced when dependencies are built.
