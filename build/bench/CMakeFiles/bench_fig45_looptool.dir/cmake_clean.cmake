file(REMOVE_RECURSE
  "CMakeFiles/bench_fig45_looptool.dir/bench_fig45_looptool.cpp.o"
  "CMakeFiles/bench_fig45_looptool.dir/bench_fig45_looptool.cpp.o.d"
  "bench_fig45_looptool"
  "bench_fig45_looptool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig45_looptool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
