# Empty compiler generated dependencies file for bench_fig45_looptool.
# This may be replaced when dependencies are built.
