# Empty compiler generated dependencies file for bench_bunsen.
# This may be replaced when dependencies are built.
