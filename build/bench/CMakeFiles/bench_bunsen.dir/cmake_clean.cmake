file(REMOVE_RECURSE
  "CMakeFiles/bench_bunsen.dir/bench_bunsen.cpp.o"
  "CMakeFiles/bench_bunsen.dir/bench_bunsen.cpp.o.d"
  "bench_bunsen"
  "bench_bunsen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bunsen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
