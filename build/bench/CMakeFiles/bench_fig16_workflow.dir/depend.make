# Empty dependencies file for bench_fig16_workflow.
# This may be replaced when dependencies are built.
