file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_workflow.dir/bench_fig16_workflow.cpp.o"
  "CMakeFiles/bench_fig16_workflow.dir/bench_fig16_workflow.cpp.o.d"
  "bench_fig16_workflow"
  "bench_fig16_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
