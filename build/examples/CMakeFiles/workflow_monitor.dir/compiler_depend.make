# Empty compiler generated dependencies file for workflow_monitor.
# This may be replaced when dependencies are built.
