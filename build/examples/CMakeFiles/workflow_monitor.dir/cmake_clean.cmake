file(REMOVE_RECURSE
  "CMakeFiles/workflow_monitor.dir/workflow_monitor.cpp.o"
  "CMakeFiles/workflow_monitor.dir/workflow_monitor.cpp.o.d"
  "workflow_monitor"
  "workflow_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
