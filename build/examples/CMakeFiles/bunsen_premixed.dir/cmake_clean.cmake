file(REMOVE_RECURSE
  "CMakeFiles/bunsen_premixed.dir/bunsen_premixed.cpp.o"
  "CMakeFiles/bunsen_premixed.dir/bunsen_premixed.cpp.o.d"
  "bunsen_premixed"
  "bunsen_premixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bunsen_premixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
