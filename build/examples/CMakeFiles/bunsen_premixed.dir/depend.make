# Empty dependencies file for bunsen_premixed.
# This may be replaced when dependencies are built.
