file(REMOVE_RECURSE
  "CMakeFiles/flame_speed_table.dir/flame_speed_table.cpp.o"
  "CMakeFiles/flame_speed_table.dir/flame_speed_table.cpp.o.d"
  "flame_speed_table"
  "flame_speed_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flame_speed_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
