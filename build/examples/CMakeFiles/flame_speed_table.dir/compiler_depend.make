# Empty compiler generated dependencies file for flame_speed_table.
# This may be replaced when dependencies are built.
