file(REMOVE_RECURSE
  "CMakeFiles/lifted_jet_flame.dir/lifted_jet_flame.cpp.o"
  "CMakeFiles/lifted_jet_flame.dir/lifted_jet_flame.cpp.o.d"
  "lifted_jet_flame"
  "lifted_jet_flame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifted_jet_flame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
