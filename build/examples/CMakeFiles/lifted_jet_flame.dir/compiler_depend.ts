# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lifted_jet_flame.
