# Empty dependencies file for lifted_jet_flame.
# This may be replaced when dependencies are built.
