# Empty compiler generated dependencies file for io_checkpoint.
# This may be replaced when dependencies are built.
