file(REMOVE_RECURSE
  "CMakeFiles/io_checkpoint.dir/io_checkpoint.cpp.o"
  "CMakeFiles/io_checkpoint.dir/io_checkpoint.cpp.o.d"
  "io_checkpoint"
  "io_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
