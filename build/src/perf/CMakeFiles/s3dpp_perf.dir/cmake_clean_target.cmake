file(REMOVE_RECURSE
  "libs3dpp_perf.a"
)
