file(REMOVE_RECURSE
  "CMakeFiles/s3dpp_perf.dir/kernels.cpp.o"
  "CMakeFiles/s3dpp_perf.dir/kernels.cpp.o.d"
  "CMakeFiles/s3dpp_perf.dir/model.cpp.o"
  "CMakeFiles/s3dpp_perf.dir/model.cpp.o.d"
  "libs3dpp_perf.a"
  "libs3dpp_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3dpp_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
