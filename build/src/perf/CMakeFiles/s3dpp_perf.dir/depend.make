# Empty dependencies file for s3dpp_perf.
# This may be replaced when dependencies are built.
