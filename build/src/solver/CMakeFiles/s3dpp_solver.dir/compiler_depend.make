# Empty compiler generated dependencies file for s3dpp_solver.
# This may be replaced when dependencies are built.
