
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/cases.cpp" "src/solver/CMakeFiles/s3dpp_solver.dir/cases.cpp.o" "gcc" "src/solver/CMakeFiles/s3dpp_solver.dir/cases.cpp.o.d"
  "/root/repo/src/solver/checkpoint.cpp" "src/solver/CMakeFiles/s3dpp_solver.dir/checkpoint.cpp.o" "gcc" "src/solver/CMakeFiles/s3dpp_solver.dir/checkpoint.cpp.o.d"
  "/root/repo/src/solver/diagnostics.cpp" "src/solver/CMakeFiles/s3dpp_solver.dir/diagnostics.cpp.o" "gcc" "src/solver/CMakeFiles/s3dpp_solver.dir/diagnostics.cpp.o.d"
  "/root/repo/src/solver/field_ops.cpp" "src/solver/CMakeFiles/s3dpp_solver.dir/field_ops.cpp.o" "gcc" "src/solver/CMakeFiles/s3dpp_solver.dir/field_ops.cpp.o.d"
  "/root/repo/src/solver/halo.cpp" "src/solver/CMakeFiles/s3dpp_solver.dir/halo.cpp.o" "gcc" "src/solver/CMakeFiles/s3dpp_solver.dir/halo.cpp.o.d"
  "/root/repo/src/solver/nscbc.cpp" "src/solver/CMakeFiles/s3dpp_solver.dir/nscbc.cpp.o" "gcc" "src/solver/CMakeFiles/s3dpp_solver.dir/nscbc.cpp.o.d"
  "/root/repo/src/solver/rhs.cpp" "src/solver/CMakeFiles/s3dpp_solver.dir/rhs.cpp.o" "gcc" "src/solver/CMakeFiles/s3dpp_solver.dir/rhs.cpp.o.d"
  "/root/repo/src/solver/solver.cpp" "src/solver/CMakeFiles/s3dpp_solver.dir/solver.cpp.o" "gcc" "src/solver/CMakeFiles/s3dpp_solver.dir/solver.cpp.o.d"
  "/root/repo/src/solver/state.cpp" "src/solver/CMakeFiles/s3dpp_solver.dir/state.cpp.o" "gcc" "src/solver/CMakeFiles/s3dpp_solver.dir/state.cpp.o.d"
  "/root/repo/src/solver/turbulence.cpp" "src/solver/CMakeFiles/s3dpp_solver.dir/turbulence.cpp.o" "gcc" "src/solver/CMakeFiles/s3dpp_solver.dir/turbulence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chem/CMakeFiles/s3dpp_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/s3dpp_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/s3dpp_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/s3dpp_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/s3dpp_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/s3dpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
