file(REMOVE_RECURSE
  "CMakeFiles/s3dpp_solver.dir/cases.cpp.o"
  "CMakeFiles/s3dpp_solver.dir/cases.cpp.o.d"
  "CMakeFiles/s3dpp_solver.dir/checkpoint.cpp.o"
  "CMakeFiles/s3dpp_solver.dir/checkpoint.cpp.o.d"
  "CMakeFiles/s3dpp_solver.dir/diagnostics.cpp.o"
  "CMakeFiles/s3dpp_solver.dir/diagnostics.cpp.o.d"
  "CMakeFiles/s3dpp_solver.dir/field_ops.cpp.o"
  "CMakeFiles/s3dpp_solver.dir/field_ops.cpp.o.d"
  "CMakeFiles/s3dpp_solver.dir/halo.cpp.o"
  "CMakeFiles/s3dpp_solver.dir/halo.cpp.o.d"
  "CMakeFiles/s3dpp_solver.dir/nscbc.cpp.o"
  "CMakeFiles/s3dpp_solver.dir/nscbc.cpp.o.d"
  "CMakeFiles/s3dpp_solver.dir/rhs.cpp.o"
  "CMakeFiles/s3dpp_solver.dir/rhs.cpp.o.d"
  "CMakeFiles/s3dpp_solver.dir/solver.cpp.o"
  "CMakeFiles/s3dpp_solver.dir/solver.cpp.o.d"
  "CMakeFiles/s3dpp_solver.dir/state.cpp.o"
  "CMakeFiles/s3dpp_solver.dir/state.cpp.o.d"
  "CMakeFiles/s3dpp_solver.dir/turbulence.cpp.o"
  "CMakeFiles/s3dpp_solver.dir/turbulence.cpp.o.d"
  "libs3dpp_solver.a"
  "libs3dpp_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3dpp_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
