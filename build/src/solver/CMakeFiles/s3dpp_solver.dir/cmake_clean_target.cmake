file(REMOVE_RECURSE
  "libs3dpp_solver.a"
)
