file(REMOVE_RECURSE
  "libs3dpp_common.a"
)
