# Empty dependencies file for s3dpp_common.
# This may be replaced when dependencies are built.
