file(REMOVE_RECURSE
  "CMakeFiles/s3dpp_common.dir/table.cpp.o"
  "CMakeFiles/s3dpp_common.dir/table.cpp.o.d"
  "libs3dpp_common.a"
  "libs3dpp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3dpp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
