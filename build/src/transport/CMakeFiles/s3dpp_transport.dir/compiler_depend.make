# Empty compiler generated dependencies file for s3dpp_transport.
# This may be replaced when dependencies are built.
