file(REMOVE_RECURSE
  "libs3dpp_transport.a"
)
