file(REMOVE_RECURSE
  "CMakeFiles/s3dpp_transport.dir/transport.cpp.o"
  "CMakeFiles/s3dpp_transport.dir/transport.cpp.o.d"
  "libs3dpp_transport.a"
  "libs3dpp_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3dpp_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
