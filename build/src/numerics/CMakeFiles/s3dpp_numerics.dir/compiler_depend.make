# Empty compiler generated dependencies file for s3dpp_numerics.
# This may be replaced when dependencies are built.
