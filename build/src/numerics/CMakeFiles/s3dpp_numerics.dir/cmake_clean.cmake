file(REMOVE_RECURSE
  "CMakeFiles/s3dpp_numerics.dir/rk.cpp.o"
  "CMakeFiles/s3dpp_numerics.dir/rk.cpp.o.d"
  "CMakeFiles/s3dpp_numerics.dir/stencil.cpp.o"
  "CMakeFiles/s3dpp_numerics.dir/stencil.cpp.o.d"
  "libs3dpp_numerics.a"
  "libs3dpp_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3dpp_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
