file(REMOVE_RECURSE
  "libs3dpp_numerics.a"
)
