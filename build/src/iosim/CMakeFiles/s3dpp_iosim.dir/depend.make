# Empty dependencies file for s3dpp_iosim.
# This may be replaced when dependencies are built.
