
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iosim/simfs.cpp" "src/iosim/CMakeFiles/s3dpp_iosim.dir/simfs.cpp.o" "gcc" "src/iosim/CMakeFiles/s3dpp_iosim.dir/simfs.cpp.o.d"
  "/root/repo/src/iosim/workload.cpp" "src/iosim/CMakeFiles/s3dpp_iosim.dir/workload.cpp.o" "gcc" "src/iosim/CMakeFiles/s3dpp_iosim.dir/workload.cpp.o.d"
  "/root/repo/src/iosim/writers.cpp" "src/iosim/CMakeFiles/s3dpp_iosim.dir/writers.cpp.o" "gcc" "src/iosim/CMakeFiles/s3dpp_iosim.dir/writers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s3dpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
