file(REMOVE_RECURSE
  "libs3dpp_iosim.a"
)
