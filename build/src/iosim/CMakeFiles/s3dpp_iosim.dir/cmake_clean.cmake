file(REMOVE_RECURSE
  "CMakeFiles/s3dpp_iosim.dir/simfs.cpp.o"
  "CMakeFiles/s3dpp_iosim.dir/simfs.cpp.o.d"
  "CMakeFiles/s3dpp_iosim.dir/workload.cpp.o"
  "CMakeFiles/s3dpp_iosim.dir/workload.cpp.o.d"
  "CMakeFiles/s3dpp_iosim.dir/writers.cpp.o"
  "CMakeFiles/s3dpp_iosim.dir/writers.cpp.o.d"
  "libs3dpp_iosim.a"
  "libs3dpp_iosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3dpp_iosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
