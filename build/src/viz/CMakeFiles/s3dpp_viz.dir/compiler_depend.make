# Empty compiler generated dependencies file for s3dpp_viz.
# This may be replaced when dependencies are built.
