file(REMOVE_RECURSE
  "libs3dpp_viz.a"
)
