file(REMOVE_RECURSE
  "CMakeFiles/s3dpp_viz.dir/image.cpp.o"
  "CMakeFiles/s3dpp_viz.dir/image.cpp.o.d"
  "CMakeFiles/s3dpp_viz.dir/insitu.cpp.o"
  "CMakeFiles/s3dpp_viz.dir/insitu.cpp.o.d"
  "CMakeFiles/s3dpp_viz.dir/render.cpp.o"
  "CMakeFiles/s3dpp_viz.dir/render.cpp.o.d"
  "CMakeFiles/s3dpp_viz.dir/trispace.cpp.o"
  "CMakeFiles/s3dpp_viz.dir/trispace.cpp.o.d"
  "libs3dpp_viz.a"
  "libs3dpp_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3dpp_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
