file(REMOVE_RECURSE
  "libs3dpp_premix1d.a"
)
