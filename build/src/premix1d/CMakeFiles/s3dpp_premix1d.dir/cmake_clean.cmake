file(REMOVE_RECURSE
  "CMakeFiles/s3dpp_premix1d.dir/premix1d.cpp.o"
  "CMakeFiles/s3dpp_premix1d.dir/premix1d.cpp.o.d"
  "libs3dpp_premix1d.a"
  "libs3dpp_premix1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3dpp_premix1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
