# Empty compiler generated dependencies file for s3dpp_premix1d.
# This may be replaced when dependencies are built.
