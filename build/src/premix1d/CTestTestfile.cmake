# CMake generated Testfile for 
# Source directory: /root/repo/src/premix1d
# Build directory: /root/repo/build/src/premix1d
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
