# Empty dependencies file for s3dpp_vmpi.
# This may be replaced when dependencies are built.
