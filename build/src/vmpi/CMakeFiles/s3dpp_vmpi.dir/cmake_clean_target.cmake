file(REMOVE_RECURSE
  "libs3dpp_vmpi.a"
)
