file(REMOVE_RECURSE
  "CMakeFiles/s3dpp_vmpi.dir/vmpi.cpp.o"
  "CMakeFiles/s3dpp_vmpi.dir/vmpi.cpp.o.d"
  "libs3dpp_vmpi.a"
  "libs3dpp_vmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3dpp_vmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
