file(REMOVE_RECURSE
  "CMakeFiles/s3dpp_workflow.dir/actor.cpp.o"
  "CMakeFiles/s3dpp_workflow.dir/actor.cpp.o.d"
  "CMakeFiles/s3dpp_workflow.dir/actors.cpp.o"
  "CMakeFiles/s3dpp_workflow.dir/actors.cpp.o.d"
  "CMakeFiles/s3dpp_workflow.dir/provenance.cpp.o"
  "CMakeFiles/s3dpp_workflow.dir/provenance.cpp.o.d"
  "CMakeFiles/s3dpp_workflow.dir/s3d_pipeline.cpp.o"
  "CMakeFiles/s3dpp_workflow.dir/s3d_pipeline.cpp.o.d"
  "libs3dpp_workflow.a"
  "libs3dpp_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3dpp_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
