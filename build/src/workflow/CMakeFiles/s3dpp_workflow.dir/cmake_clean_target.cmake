file(REMOVE_RECURSE
  "libs3dpp_workflow.a"
)
