# Empty compiler generated dependencies file for s3dpp_workflow.
# This may be replaced when dependencies are built.
