
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/actor.cpp" "src/workflow/CMakeFiles/s3dpp_workflow.dir/actor.cpp.o" "gcc" "src/workflow/CMakeFiles/s3dpp_workflow.dir/actor.cpp.o.d"
  "/root/repo/src/workflow/actors.cpp" "src/workflow/CMakeFiles/s3dpp_workflow.dir/actors.cpp.o" "gcc" "src/workflow/CMakeFiles/s3dpp_workflow.dir/actors.cpp.o.d"
  "/root/repo/src/workflow/provenance.cpp" "src/workflow/CMakeFiles/s3dpp_workflow.dir/provenance.cpp.o" "gcc" "src/workflow/CMakeFiles/s3dpp_workflow.dir/provenance.cpp.o.d"
  "/root/repo/src/workflow/s3d_pipeline.cpp" "src/workflow/CMakeFiles/s3dpp_workflow.dir/s3d_pipeline.cpp.o" "gcc" "src/workflow/CMakeFiles/s3dpp_workflow.dir/s3d_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s3dpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
