file(REMOVE_RECURSE
  "libs3dpp_chem.a"
)
