file(REMOVE_RECURSE
  "CMakeFiles/s3dpp_chem.dir/mechanism.cpp.o"
  "CMakeFiles/s3dpp_chem.dir/mechanism.cpp.o.d"
  "CMakeFiles/s3dpp_chem.dir/mechanism_builder.cpp.o"
  "CMakeFiles/s3dpp_chem.dir/mechanism_builder.cpp.o.d"
  "CMakeFiles/s3dpp_chem.dir/mechanisms.cpp.o"
  "CMakeFiles/s3dpp_chem.dir/mechanisms.cpp.o.d"
  "CMakeFiles/s3dpp_chem.dir/mixing.cpp.o"
  "CMakeFiles/s3dpp_chem.dir/mixing.cpp.o.d"
  "CMakeFiles/s3dpp_chem.dir/reactor.cpp.o"
  "CMakeFiles/s3dpp_chem.dir/reactor.cpp.o.d"
  "CMakeFiles/s3dpp_chem.dir/species_db.cpp.o"
  "CMakeFiles/s3dpp_chem.dir/species_db.cpp.o.d"
  "CMakeFiles/s3dpp_chem.dir/thermo.cpp.o"
  "CMakeFiles/s3dpp_chem.dir/thermo.cpp.o.d"
  "libs3dpp_chem.a"
  "libs3dpp_chem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3dpp_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
