# Empty dependencies file for s3dpp_chem.
# This may be replaced when dependencies are built.
