
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chem/mechanism.cpp" "src/chem/CMakeFiles/s3dpp_chem.dir/mechanism.cpp.o" "gcc" "src/chem/CMakeFiles/s3dpp_chem.dir/mechanism.cpp.o.d"
  "/root/repo/src/chem/mechanism_builder.cpp" "src/chem/CMakeFiles/s3dpp_chem.dir/mechanism_builder.cpp.o" "gcc" "src/chem/CMakeFiles/s3dpp_chem.dir/mechanism_builder.cpp.o.d"
  "/root/repo/src/chem/mechanisms.cpp" "src/chem/CMakeFiles/s3dpp_chem.dir/mechanisms.cpp.o" "gcc" "src/chem/CMakeFiles/s3dpp_chem.dir/mechanisms.cpp.o.d"
  "/root/repo/src/chem/mixing.cpp" "src/chem/CMakeFiles/s3dpp_chem.dir/mixing.cpp.o" "gcc" "src/chem/CMakeFiles/s3dpp_chem.dir/mixing.cpp.o.d"
  "/root/repo/src/chem/reactor.cpp" "src/chem/CMakeFiles/s3dpp_chem.dir/reactor.cpp.o" "gcc" "src/chem/CMakeFiles/s3dpp_chem.dir/reactor.cpp.o.d"
  "/root/repo/src/chem/species_db.cpp" "src/chem/CMakeFiles/s3dpp_chem.dir/species_db.cpp.o" "gcc" "src/chem/CMakeFiles/s3dpp_chem.dir/species_db.cpp.o.d"
  "/root/repo/src/chem/thermo.cpp" "src/chem/CMakeFiles/s3dpp_chem.dir/thermo.cpp.o" "gcc" "src/chem/CMakeFiles/s3dpp_chem.dir/thermo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s3dpp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
