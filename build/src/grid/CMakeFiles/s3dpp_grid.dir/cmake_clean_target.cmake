file(REMOVE_RECURSE
  "libs3dpp_grid.a"
)
