# Empty compiler generated dependencies file for s3dpp_grid.
# This may be replaced when dependencies are built.
