file(REMOVE_RECURSE
  "CMakeFiles/s3dpp_grid.dir/mesh.cpp.o"
  "CMakeFiles/s3dpp_grid.dir/mesh.cpp.o.d"
  "libs3dpp_grid.a"
  "libs3dpp_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3dpp_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
